package core

import (
	"math"
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// wstatsDataset builds a small uncertain dataset with varied moments.
func wstatsDataset(n, m int, seed uint64) uncertain.Dataset {
	r := rng.New(seed)
	ds := make(uncertain.Dataset, n)
	for i := range ds {
		ms := make([]dist.Distribution, m)
		for j := range ms {
			ms[j] = dist.NewTruncNormalCentral(r.Normal(0, 5), 0.2+r.Float64(), 0.95)
		}
		ds[i] = uncertain.NewObject(i, ms)
	}
	return ds
}

// TestWStatsMatchesBatchStats: with no forgetting (λ = 1), the weighted
// read-out must agree with the batch Stats/Theorem-2 closed forms on the
// same partition.
func TestWStatsMatchesBatchStats(t *testing.T) {
	ds := wstatsDataset(120, 3, 7)
	mom := uncertain.MomentsOf(ds)
	k, m := 4, mom.Dims()
	assign := make([]int, mom.Len())
	r := rng.New(99)
	for i := range assign {
		assign[i] = r.Intn(k)
	}

	ws := NewWStats(k, m)
	ws.AddAssigned(mom, assign)

	stats := make([]*Stats, k)
	for c := range stats {
		stats[c] = NewStats(m)
	}
	AccumulateStats(mom, assign, stats)

	means := make([]float64, k*m)
	adds := make([]float64, k)
	ws.CentersInto(means, adds)

	var wantJ float64
	for c := 0; c < k; c++ {
		n := float64(stats[c].Size())
		if got := ws.Weight(c); got != n {
			t.Fatalf("cluster %d: weight %v, want %v", c, got, n)
		}
		sum := stats[c].MeanSum()
		inv := 1 / n
		for j := 0; j < m; j++ {
			want := sum[j] * inv // the engine's reciprocal-multiply idiom
			if got := means[c*m+j]; got != want {
				t.Fatalf("cluster %d dim %d: mean %v, want %v", c, j, got, want)
			}
		}
		wantAdd := stats[c].SumVariance() / (n * n)
		if rel := math.Abs(adds[c]-wantAdd) / (math.Abs(wantAdd) + 1); rel > 1e-12 {
			t.Fatalf("cluster %d: add %v, want %v", c, adds[c], wantAdd)
		}
		wantJ += stats[c].J()
	}
	if rel := math.Abs(ws.EstimateJ()-wantJ) / (math.Abs(wantJ) + 1); rel > 1e-9 {
		t.Fatalf("EstimateJ %v, want %v", ws.EstimateJ(), wantJ)
	}
}

// TestWStatsScale: forgetting multiplies every statistic, so the centroid
// read-out (a ratio) is invariant under Scale while the weight decays.
func TestWStatsScale(t *testing.T) {
	ds := wstatsDataset(50, 2, 11)
	mom := uncertain.MomentsOf(ds)
	k, m := 2, mom.Dims()
	assign := make([]int, mom.Len())
	for i := range assign {
		assign[i] = i % k
	}
	ws := NewWStats(k, m)
	ws.AddAssigned(mom, assign)

	means := make([]float64, k*m)
	adds := make([]float64, k)
	ws.CentersInto(means, adds)
	w0 := ws.Weight(0)

	ws.Scale(0.5)
	if got := ws.Weight(0); math.Abs(got-0.5*w0) > 1e-12 {
		t.Fatalf("scaled weight %v, want %v", got, 0.5*w0)
	}
	means2 := make([]float64, k*m)
	adds2 := make([]float64, k)
	ws.CentersInto(means2, adds2)
	for i := range means {
		if rel := math.Abs(means2[i]-means[i]) / (math.Abs(means[i]) + 1); rel > 1e-12 {
			t.Fatalf("mean %d moved under Scale: %v vs %v", i, means2[i], means[i])
		}
	}
	// adds = Ψ/W² doubles when every statistic halves.
	for c := range adds {
		if rel := math.Abs(adds2[c]-2*adds[c]) / (adds[c] + 1); rel > 1e-12 {
			t.Fatalf("add %d: %v, want %v", c, adds2[c], 2*adds[c])
		}
	}
}

// TestWStatsSeedAndEmpty: seeded clusters report their seed state; clusters
// with zero weight leave the read-out untouched.
func TestWStatsSeedAndEmpty(t *testing.T) {
	k, m := 3, 2
	ws := NewWStats(k, m)
	ws.SeedCluster(0, []float64{2, -1}, 5, 1.25)

	means := []float64{9, 9, 9, 9, 9, 9}
	adds := []float64{9, 9, 9}
	ws.CentersInto(means, adds)
	if means[0] != 2 || means[1] != -1 {
		t.Fatalf("seeded mean read-out %v", means[:2])
	}
	if want := 1.25 / 25; adds[0] != want {
		t.Fatalf("seeded add %v, want %v", adds[0], want)
	}
	// Untouched clusters keep their previous entries.
	if means[2] != 9 || means[4] != 9 || adds[1] != 9 || adds[2] != 9 {
		t.Fatalf("zero-weight clusters disturbed: means %v adds %v", means, adds)
	}

	sizes := make([]int, k)
	ws.Sizes(sizes)
	if sizes[0] != 5 || sizes[1] != 0 {
		t.Fatalf("sizes %v", sizes)
	}
}
