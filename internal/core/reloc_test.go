package core

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// relocTestCase is one (dataset, k) workload shared by the engine tests:
// a noisy single blob (many borderline candidates, lots of relocations)
// and a separable mixture (fast convergence, settled clusters — the
// regime the dot cache is designed for).
func relocTestCases(seed uint64) []struct {
	name string
	ds   uncertain.Dataset
	k    int
} {
	r := rng.New(seed)
	return []struct {
		name string
		ds   uncertain.Dataset
		k    int
	}{
		{"noisy", uncertain.Dataset(randomCluster(r, 90, 3)), 5},
		{"separable", separableDataset(rng.New(seed^0x5eed), 4, 30, 3), 4},
	}
}

func buildStats(mom *uncertain.Moments, assign []int, k int) []*Stats {
	stats := make([]*Stats, k)
	for c := range stats {
		stats[c] = NewStats(mom.Dims())
	}
	for i := 0; i < mom.Len(); i++ {
		stats[assign[i]].AddRow(mom.Mu(i), mom.Mu2(i), mom.Sigma2(i))
	}
	return stats
}

// referenceRelocate is the pre-engine relocation sweep: exhaustive
// candidate scans scored with the O(m) row-form Corollary-1 closed forms
// (Stats.JIfAddRow / JIfRemoveRow), exactly as the PR2/PR3 inner loop
// evaluated them. It is the ground truth the incremental engine must
// reproduce byte for byte.
func referenceRelocate(kind RelocKind, mom *uncertain.Moments, assign []int, k, maxIter int, minImprove float64) int {
	n := mom.Len()
	stats := buildStats(mom, assign, k)
	jOf := func(c int) float64 {
		if kind == RelocMMVar {
			return stats[c].JMM()
		}
		return stats[c].J()
	}
	jCache := make([]float64, k)
	for c := range stats {
		jCache[c] = jOf(c)
	}
	iterations := 0
	for iterations < maxIter {
		iterations++
		moves := 0
		for i := 0; i < n; i++ {
			co := assign[i]
			if stats[co].Size() == 1 {
				continue
			}
			mu, mu2, sig := mom.Mu(i), mom.Mu2(i), mom.Sigma2(i)
			var jCoRemoved float64
			if kind == RelocMMVar {
				jCoRemoved = stats[co].JMMIfRemoveRow(mu, mu2)
			} else {
				jCoRemoved = stats[co].JIfRemoveRow(mu, mu2, sig)
			}
			deltaRemove := jCoRemoved - jCache[co]
			best, bestDelta := co, 0.0
			for c := 0; c < k; c++ {
				if c == co {
					continue
				}
				var jAdd float64
				if kind == RelocMMVar {
					jAdd = stats[c].JMMIfAddRow(mu, mu2)
				} else {
					jAdd = stats[c].JIfAddRow(mu, mu2, sig)
				}
				if delta := deltaRemove + jAdd - jCache[c]; delta < bestDelta {
					bestDelta, best = delta, c
				}
			}
			if best == co {
				continue
			}
			scale := math.Abs(jCache[co]) + math.Abs(jCache[best]) + 1
			if -bestDelta <= minImprove*scale {
				continue
			}
			stats[co].RemoveRow(mu, mu2, sig)
			stats[best].AddRow(mu, mu2, sig)
			jCache[co], jCache[best] = jOf(co), jOf(best)
			assign[i] = best
			moves++
		}
		if moves == 0 {
			break
		}
	}
	return iterations
}

// engineRelocate runs the incremental engine from the same initial state.
func engineRelocate(kind RelocKind, mom *uncertain.Moments, assign []int, k, maxIter int, minImprove float64, pruning bool) (*RelocEngine, int) {
	eng := NewRelocEngine(kind, mom, buildStats(mom, assign, k), pruning)
	iterations := 0
	for iterations < maxIter {
		iterations++
		moves, err := eng.Pass(context.Background(), assign, minImprove)
		if err != nil {
			panic(err)
		}
		if moves == 0 {
			break
		}
	}
	return eng, iterations
}

// TestRelocEngineMatchesReference is the engine's headline guarantee: for
// both objective kinds, several seeds and both dataset shapes, the
// incremental O(1)-scoring sweep (pruned and unpruned) walks the exact
// relocation trajectory of the row-form exhaustive reference — identical
// iteration counts and byte-identical final partitions.
func TestRelocEngineMatchesReference(t *testing.T) {
	const maxIter, minImprove = 100, 1e-12
	for _, kind := range []RelocKind{RelocUCPC, RelocMMVar} {
		for _, seed := range []uint64{1, 42, 977} {
			for _, tc := range relocTestCases(seed) {
				mom := uncertain.MomentsOf(tc.ds)
				init := clustering.RandomPartition(len(tc.ds), tc.k, rng.New(seed^0xabc))

				ref := append([]int(nil), init...)
				refIters := referenceRelocate(kind, mom, ref, tc.k, maxIter, minImprove)

				for _, pruning := range []bool{true, false} {
					got := append([]int(nil), init...)
					eng, iters := engineRelocate(kind, mom, got, tc.k, maxIter, minImprove, pruning)
					if iters != refIters {
						t.Errorf("kind %d %s seed %d pruning %v: %d iterations vs reference %d",
							kind, tc.name, seed, pruning, iters, refIters)
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("kind %d %s seed %d pruning %v: partition diverges at object %d (engine %d, reference %d)",
								kind, tc.name, seed, pruning, i, got[i], ref[i])
						}
					}
					if rel := math.Abs(eng.Objective()-eng.RecomputeObjective()) / (math.Abs(eng.RecomputeObjective()) + 1); rel > 1e-9 {
						t.Errorf("kind %d %s seed %d pruning %v: delta-maintained objective off by %g relative",
							kind, tc.name, seed, pruning, rel)
					}
				}
			}
		}
	}
}

// objectiveOfKind recomputes the engine's global objective from scratch
// (fresh statistics accumulated in dataset order).
func objectiveOfKind(kind RelocKind, mom *uncertain.Moments, assign []int, k int) float64 {
	stats := buildStats(mom, assign, k)
	var v float64
	for _, s := range stats {
		if kind == RelocMMVar {
			v += s.JMM()
		} else {
			v += s.J()
		}
	}
	return v
}

// TestRelocObjectiveDeltaMaintained is the property test of the delta-
// maintained objective: after every pass, the running Σ_C J(C) must match
// a from-scratch recomputation within 1e-9 relative, for both kinds,
// 3 seeds and 2 datasets. (UCPC-Lloyd's counterpart is
// TestLloydObjectiveFromSums in lloyd_test.go.)
func TestRelocObjectiveDeltaMaintained(t *testing.T) {
	for _, kind := range []RelocKind{RelocUCPC, RelocMMVar} {
		for _, seed := range []uint64{1, 42, 977} {
			for _, tc := range relocTestCases(seed) {
				mom := uncertain.MomentsOf(tc.ds)
				assign := clustering.RandomPartition(len(tc.ds), tc.k, rng.New(seed^0xabc))
				eng := NewRelocEngine(kind, mom, buildStats(mom, assign, tc.k), true)
				for pass := 0; pass < 100; pass++ {
					moves, err := eng.Pass(context.Background(), assign, 1e-12)
					if err != nil {
						t.Fatal(err)
					}
					want := objectiveOfKind(kind, mom, assign, tc.k)
					if rel := math.Abs(eng.Objective()-want) / (math.Abs(want) + 1); rel > 1e-9 {
						t.Fatalf("kind %d %s seed %d pass %d: delta-maintained objective %g vs from-scratch %g (rel %g)",
							kind, tc.name, seed, pass, eng.Objective(), want, rel)
					}
					if moves == 0 {
						break
					}
				}
			}
		}
	}
}

// TestRelocUncachedMatchesCached: the size-capped fallback (no dot cache)
// must walk the same trajectory as the cached engine — fresh and cached
// dots have identical bits, so partitions and iteration counts match.
func TestRelocUncachedMatchesCached(t *testing.T) {
	for _, kind := range []RelocKind{RelocUCPC, RelocMMVar} {
		for _, seed := range []uint64{1, 42} {
			tc := relocTestCases(seed)[0]
			mom := uncertain.MomentsOf(tc.ds)
			init := clustering.RandomPartition(len(tc.ds), tc.k, rng.New(seed^0xabc))

			cachedAssign := append([]int(nil), init...)
			_, cachedIters := engineRelocate(kind, mom, cachedAssign, tc.k, 100, 1e-12, true)

			uncachedAssign := append([]int(nil), init...)
			eng := NewRelocEngine(kind, mom, buildStats(mom, uncachedAssign, tc.k), true)
			eng.cached, eng.dots, eng.dotVer = false, nil, nil
			iters := 0
			for iters < 100 {
				iters++
				moves, err := eng.Pass(context.Background(), uncachedAssign, 1e-12)
				if err != nil {
					t.Fatal(err)
				}
				if moves == 0 {
					break
				}
			}
			if iters != cachedIters {
				t.Errorf("kind %d seed %d: uncached %d iterations vs cached %d", kind, seed, iters, cachedIters)
			}
			for i := range cachedAssign {
				if cachedAssign[i] != uncachedAssign[i] {
					t.Fatalf("kind %d seed %d: partitions diverge at object %d", kind, seed, i)
				}
			}
		}
	}
}

// TestRelocDotCacheConsistency drives the engine and spot-checks that every
// cached dot product with a matching version stamp equals a fresh
// µ(o)·S computation bit for bit.
func TestRelocDotCacheConsistency(t *testing.T) {
	tc := relocTestCases(7)[0]
	mom := uncertain.MomentsOf(tc.ds)
	assign := clustering.RandomPartition(len(tc.ds), tc.k, rng.New(99))
	eng := NewRelocEngine(RelocUCPC, mom, buildStats(mom, assign, tc.k), true)
	for pass := 0; pass < 4; pass++ {
		if _, err := eng.Pass(context.Background(), assign, 1e-12); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < eng.n; i++ {
			for c := 0; c < eng.k; c++ {
				idx := i*eng.k + c
				if eng.dotVer[idx] != eng.ver[c] {
					continue // stale entry, allowed to hold anything
				}
				if want := mom.MuDot(i, eng.stats[c].sum); eng.dots[idx] != want {
					t.Fatalf("pass %d: cached dot (%d,%d) = %g, fresh = %g", pass, i, c, eng.dots[idx], want)
				}
			}
		}
	}
}

// TestRelocEnginePassZeroAllocs gates the zero-allocation contract of the
// relocation sweep: at the converged fixed point (the steady state every
// extra pass repeats), Pass performs no heap allocations.
func TestRelocEnginePassZeroAllocs(t *testing.T) {
	for _, kind := range []RelocKind{RelocUCPC, RelocMMVar} {
		tc := relocTestCases(11)[1]
		mom := uncertain.MomentsOf(tc.ds)
		assign := clustering.RandomPartition(len(tc.ds), tc.k, rng.New(5))
		eng, _ := engineRelocate(kind, mom, assign, tc.k, 100, 1e-12, true)
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := eng.Pass(context.Background(), assign, 1e-12); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("kind %d: %g allocs per steady-state pass, want 0", kind, allocs)
		}
	}
}

// TestAssignerSteadyPassZeroAllocs gates the assignment engine the same
// way: once bounds exist, a SetCenters+Assign round allocates nothing.
func TestAssignerSteadyPassZeroAllocs(t *testing.T) {
	tc := relocTestCases(13)[1]
	mom := uncertain.MomentsOf(tc.ds)
	k, m := tc.k, mom.Dims()
	assign := make([]int, mom.Len())
	for i := range assign {
		assign[i] = -1
	}
	centers := make([]float64, k*m)
	adds := make([]float64, k)
	for c := 0; c < k; c++ {
		copy(centers[c*m:(c+1)*m], mom.Mu(c*7))
		adds[c] = mom.TotalVar(c * 7)
	}
	for _, enabled := range []bool{true, false} {
		eng := NewAssigner(mom, k, enabled)
		eng.SetCenters(centers, adds)
		eng.Assign(assign, 1) // first pass builds the bounds
		allocs := testing.AllocsPerRun(10, func() {
			eng.SetCenters(centers, adds)
			eng.Assign(assign, 1)
		})
		if allocs != 0 {
			t.Errorf("enabled=%v: %g allocs per steady-state assignment round, want 0", enabled, allocs)
		}
	}
}
