package core

import "ucpc/internal/clustering"

// The UCPC family self-registers with the shared algorithm registry, so the
// public API's name list and constructors are always in sync with what this
// package actually provides. Ranks follow the paper's lineup order (see
// ucpc.AlgorithmNames).
func init() {
	clustering.Register(clustering.Registration{
		Name: "UCPC", Rank: 10, Prototype: clustering.ProtoUCentroid,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &UCPC{MaxIter: cfg.MaxIter, Workers: cfg.Workers, Pruning: cfg.Pruning, Progress: cfg.Progress}
		},
	})
	clustering.Register(clustering.Registration{
		Name: "UCPC-Lloyd", Rank: 20, Prototype: clustering.ProtoUCentroid,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &UCPCLloyd{MaxIter: cfg.MaxIter, Workers: cfg.Workers, Pruning: cfg.Pruning, Progress: cfg.Progress}
		},
	})
	clustering.Register(clustering.Registration{
		Name: "UCPC-Bisect", Rank: 30, Prototype: clustering.ProtoUCentroid,
		New: func(cfg clustering.Config) clustering.Algorithm {
			return &BisectingUCPC{MaxIter: cfg.MaxIter, Workers: cfg.Workers, Pruning: cfg.Pruning, Progress: cfg.Progress}
		},
	})
}
