package core

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func TestBisectRecoversSeparatedClusters(t *testing.T) {
	r := rng.New(4000)
	ds := separableDataset(r, 4, 15, 2)
	rep, splits, err := (&BisectingUCPC{}).ClusterWithSplits(context.Background(), ds, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("%d splits for k=4", len(splits))
	}
	for g := 0; g < 4; g++ {
		seen := map[int]bool{}
		for i, o := range ds {
			if o.Label == g {
				seen[rep.Partition.Assign[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("group %d split across %v", g, seen)
		}
	}
}

// Each divisive split must strictly reduce the total objective: splitting a
// cluster into the best found 2-partition never costs more than keeping it.
func TestBisectSplitsReduceObjective(t *testing.T) {
	r := rng.New(4100)
	ds := uncertain.Dataset(randomCluster(r, 40, 3))
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		rep, err := (&BisectingUCPC{}).Cluster(context.Background(), ds, k, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Objective > prev+1e-9*(1+math.Abs(prev)) {
			t.Errorf("objective rose from k=%d to k=%d: %v -> %v", k-1, k, prev, rep.Objective)
		}
		prev = rep.Objective
		if !rep.Partition.NonEmpty() {
			t.Errorf("k=%d: empty cluster", k)
		}
	}
}

func TestBisectObjectiveConsistent(t *testing.T) {
	r := rng.New(4200)
	ds := uncertain.Dataset(randomCluster(r, 30, 2))
	rep, err := (&BisectingUCPC{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	want := Objective(ds, rep.Partition.Assign, 3)
	if math.Abs(rep.Objective-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("reported %v vs recomputed %v", rep.Objective, want)
	}
}

func TestBisectSplitHistoryWellFormed(t *testing.T) {
	r := rng.New(4300)
	ds := uncertain.Dataset(randomCluster(r, 25, 2))
	_, splits, err := (&BisectingUCPC{}).ClusterWithSplits(context.Background(), ds, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	for step, s := range splits {
		if s.NewCluster != step+1 {
			t.Errorf("step %d created cluster %d, want %d", step, s.NewCluster, step+1)
		}
		if s.Parent < 0 || s.Parent > step {
			t.Errorf("step %d split nonexistent parent %d", step, s.Parent)
		}
		if s.ParentJ < 0 {
			t.Errorf("step %d parent J = %v", step, s.ParentJ)
		}
	}
}

func TestBisectKEqualsNAndOne(t *testing.T) {
	r := rng.New(4400)
	ds := uncertain.Dataset(randomCluster(r, 8, 2))
	rep, err := (&BisectingUCPC{}).Cluster(context.Background(), ds, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range rep.Partition.Assign {
		if seen[c] {
			t.Fatal("k=n must produce singletons")
		}
		seen[c] = true
	}
	rep1, err := (&BisectingUCPC{}).Cluster(context.Background(), ds, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep1.Partition.Assign {
		if c != 0 {
			t.Fatal("k=1 must keep one cluster")
		}
	}
}

func TestBisectValidation(t *testing.T) {
	r := rng.New(4500)
	ds := uncertain.Dataset(randomCluster(r, 5, 2))
	if _, err := (&BisectingUCPC{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&BisectingUCPC{}).Cluster(context.Background(), ds, 6, r); err == nil {
		t.Error("k>n accepted")
	}
}

var _ clustering.Algorithm = (*BisectingUCPC)(nil)
