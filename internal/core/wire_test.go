package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/persist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// randomWStats builds statistics from a random assignment of a random
// dataset, so every field carries non-trivial values.
func randomWStats(t testing.TB, k, m, n int, seed uint64) *WStats {
	t.Helper()
	mom := uncertain.MomentsOf(wstatsDataset(n, m, seed))
	assign := make([]int, n)
	r := rng.New(seed ^ 0xabcd)
	for i := range assign {
		assign[i] = r.Intn(k)
	}
	ws := NewWStats(k, m)
	ws.AddAssigned(mom, assign)
	return ws
}

// TestWStatsWireRoundTrip: decode(encode(ws)) restores every statistic
// bit-for-bit, and re-encoding is byte-identical.
func TestWStatsWireRoundTrip(t *testing.T) {
	ws := randomWStats(t, 5, 3, 200, 17)
	enc, err := ws.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if want := wstatsWireLen(5, 3); len(enc) != want {
		t.Fatalf("encoded %d bytes, want %d", len(enc), want)
	}
	dec, err := UnmarshalWStats(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.k != ws.k || dec.m != ws.m {
		t.Fatalf("decoded shape %dx%d, want %dx%d", dec.k, dec.m, ws.k, ws.m)
	}
	for c := 0; c < ws.k; c++ {
		if dec.w[c] != ws.w[c] || dec.psi[c] != ws.psi[c] || dec.phi[c] != ws.phi[c] {
			t.Fatalf("cluster %d scalars differ after round trip", c)
		}
	}
	for i := range ws.sum {
		if dec.sum[i] != ws.sum[i] {
			t.Fatalf("sum[%d] differs after round trip", i)
		}
	}
	enc2, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding a decoded payload is not byte-identical")
	}
}

// TestWStatsWireRejects: malformed payloads come back as wrapped
// ErrBadModelFormat / ErrModelVersion, never as panics.
func TestWStatsWireRejects(t *testing.T) {
	ws := randomWStats(t, 3, 2, 60, 5)
	good, err := ws.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, clustering.ErrBadModelFormat},
		{"truncated header", good[:7], clustering.ErrBadModelFormat},
		{"truncated body", good[:len(good)-3], clustering.ErrBadModelFormat},
		{"trailing bytes", append(append([]byte(nil), good...), 0), clustering.ErrBadModelFormat},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), clustering.ErrBadModelFormat},
		{"future version", corrupt(func(b []byte) []byte { b[4] = 99; return b }), clustering.ErrModelVersion},
		{"oversized k", corrupt(func(b []byte) []byte {
			b[5], b[6], b[7], b[8] = 0xff, 0xff, 0xff, 0xff
			return b
		}), clustering.ErrBadModelFormat},
		{"zero m", corrupt(func(b []byte) []byte {
			b[9], b[10], b[11], b[12] = 0, 0, 0, 0
			return b
		}), clustering.ErrBadModelFormat},
		{"NaN weight", corrupt(func(b []byte) []byte {
			putF64(b[13:], math.NaN())
			return b
		}), clustering.ErrBadModelFormat},
		{"negative weight", corrupt(func(b []byte) []byte {
			putF64(b[13:], -1)
			return b
		}), clustering.ErrBadModelFormat},
		{"Inf mean sum", corrupt(func(b []byte) []byte {
			putF64(b[13+8*3:], math.Inf(1))
			return b
		}), clustering.ErrBadModelFormat},
	}
	for _, tc := range cases {
		if _, err := UnmarshalWStats(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// putF64 overwrites the first 8 bytes of b with v's little-endian bits.
func putF64(b []byte, v float64) {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

// TestWStatsMergeMatchesSingle: splitting a dataset into random parts,
// accumulating per-part statistics, and tree-merging them must reproduce
// the single-accumulator read-out within floating-point reassociation
// slack (1e-9 relative) — the correctness core of the sharded fit.
func TestWStatsMergeMatchesSingle(t *testing.T) {
	for _, parts := range []int{2, 3, 5, 8} {
		for _, seed := range []uint64{3, 41} {
			k, m, n := 6, 4, 400
			ds := wstatsDataset(n, m, seed)
			mom := uncertain.MomentsOf(ds)
			assign := make([]int, n)
			r := rng.New(seed * 1313)
			for i := range assign {
				assign[i] = r.Intn(k)
			}

			single := NewWStats(k, m)
			single.AddAssigned(mom, assign)

			// Rows round-robin into `parts` accumulators (each part gets its
			// own Moments window, as shards would).
			shards := make([]*WStats, parts)
			for p := range shards {
				w := uncertain.NewMoments(m)
				var pa []int
				for i := 0; i < n; i++ {
					if i%parts == p {
						w.Append(ds[i])
						pa = append(pa, assign[i])
					}
				}
				shards[p] = NewWStats(k, m)
				shards[p].AddAssigned(w, pa)
			}
			// A second operand list in reversed order checks commutativity:
			// merging the same parts in a different order must land on the
			// same read-out (up to reassociation slack).
			rev := make([]*WStats, parts)
			for p := range rev {
				rev[p] = NewWStats(k, m)
				rev[p].CopyFrom(shards[parts-1-p])
			}
			// Deterministic pairwise tree reduction.
			reduce := func(ops []*WStats) *WStats {
				for len(ops) > 1 {
					var next []*WStats
					for i := 0; i < len(ops); i += 2 {
						if i+1 < len(ops) {
							ops[i].Merge(ops[i+1])
						}
						next = append(next, ops[i])
					}
					ops = next
				}
				return ops[0]
			}
			merged := reduce(shards)
			revMerged := reduce(rev)

			sm := make([]float64, k*m)
			sa := make([]float64, k)
			mm := make([]float64, k*m)
			ma := make([]float64, k)
			single.CentersInto(sm, sa)
			merged.CentersInto(mm, ma)
			for i := range sm {
				if rel := math.Abs(mm[i]-sm[i]) / (math.Abs(sm[i]) + 1); rel > 1e-9 {
					t.Fatalf("parts=%d seed=%d: merged mean[%d]=%v vs single %v", parts, seed, i, mm[i], sm[i])
				}
			}
			for c := range sa {
				if rel := math.Abs(ma[c]-sa[c]) / (math.Abs(sa[c]) + 1); rel > 1e-9 {
					t.Fatalf("parts=%d seed=%d: merged add[%d]=%v vs single %v", parts, seed, c, ma[c], sa[c])
				}
			}
			if rel := math.Abs(merged.EstimateJ()-single.EstimateJ()) / (math.Abs(single.EstimateJ()) + 1); rel > 1e-9 {
				t.Fatalf("parts=%d seed=%d: merged J %v vs single %v", parts, seed, merged.EstimateJ(), single.EstimateJ())
			}
			rm := make([]float64, k*m)
			ra := make([]float64, k)
			revMerged.CentersInto(rm, ra)
			for i := range mm {
				if rel := math.Abs(rm[i]-mm[i]) / (math.Abs(mm[i]) + 1); rel > 1e-9 {
					t.Fatalf("parts=%d seed=%d: reversed-order mean[%d]=%v vs forward %v", parts, seed, i, rm[i], mm[i])
				}
			}
			for c := range ma {
				if rel := math.Abs(ra[c]-ma[c]) / (math.Abs(ma[c]) + 1); rel > 1e-9 {
					t.Fatalf("parts=%d seed=%d: reversed-order add[%d]=%v vs forward %v", parts, seed, c, ra[c], ma[c])
				}
			}
		}
	}
}

// TestWStatsMergeMapped: merging under a permutation lands each source
// cluster's statistics in the mapped slot exactly.
func TestWStatsMergeMapped(t *testing.T) {
	a := randomWStats(t, 4, 2, 80, 9)
	b := randomWStats(t, 4, 2, 80, 10)
	perm := []int{2, 0, 3, 1}

	merged := NewWStats(4, 2)
	merged.CopyFrom(a)
	merged.MergeMapped(b, perm)
	for c := 0; c < 4; c++ {
		d := perm[c]
		if got, want := merged.w[d], a.w[d]+b.w[c]; got != want {
			t.Fatalf("cluster %d→%d: weight %v, want %v", c, d, got, want)
		}
		for j := 0; j < 2; j++ {
			if got, want := merged.sum[d*2+j], a.sum[d*2+j]+b.sum[c*2+j]; got != want {
				t.Fatalf("cluster %d→%d dim %d: sum %v, want %v", c, d, j, got, want)
			}
		}
	}
}

// FuzzUnmarshalWStats: arbitrary bytes must either be rejected with a
// typed sentinel or decode to statistics whose re-encoding is
// byte-identical to the accepted input — never a panic, never an
// unbounded allocation.
func FuzzUnmarshalWStats(f *testing.F) {
	ws := randomWStats(f, 4, 3, 120, 21)
	good, err := ws.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add(append(append([]byte(nil), good...), 7))
	bad := append([]byte(nil), good...)
	bad[4] = 9
	f.Add(bad)
	f.Add([]byte("UCWS"))
	f.Add([]byte{})
	// On-disk snapshot frames: the daemon persists statistics inside
	// internal/persist's CRC-framed container. Seed the decoder with the
	// framed bytes (frame header bytes must read as a bad magic, never a
	// panic) and with the frame's payload region alone.
	frame := persist.EncodeFrame(persist.KindStats, good)
	f.Add(frame)
	f.Add(frame[18:])
	f.Add(frame[:18])
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalWStats(data)
		if err != nil {
			if !errors.Is(err, clustering.ErrBadModelFormat) && !errors.Is(err, clustering.ErrModelVersion) {
				t.Fatalf("rejection is not a typed sentinel: %v", err)
			}
			return
		}
		re, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding an accepted payload failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("accepted payload does not re-encode byte-identically")
		}
	})
}
