package core

import (
	"context"
	"math"

	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// This file implements the incremental-statistics relocation engine behind
// UCPC (Algorithm 1) and MMVar. The key observation is that the Theorem-3 /
// Corollary-1 objective of a cluster depends on its per-dimension sums only
// through three scalars,
//
//	Ψ = Σ_j Ψ^{(j)}   (total variance sum)
//	Φ = Σ_j Φ^{(j)}   (total second-moment sum)
//	‖S‖² = Σ_j (S^{(j)})²   (squared norm of the mean sum)
//
// because J(C) = Ψ/|C| + Φ − ‖S‖²/|C| (and J_UK, J_MM likewise). The add
// and remove scores then reduce to
//
//	J(C ∪ {o}) = (Ψ + σ²(o))/(|C|+1) + Φ + φ(o)
//	             − (‖S‖² + 2·µ(o)·S + ‖µ(o)‖²)/(|C|+1)
//	J(C \ {o}) = (Ψ − σ²(o))/(|C|−1) + Φ − φ(o)
//	             − (‖S‖² − 2·µ(o)·S + ‖µ(o)‖²)/(|C|−1)
//
// with φ(o) = Σ_j (µ₂)_j(o). Every term except the dot product µ(o)·S is a
// precomputed per-object scalar (Moments.TotalVar/Mu2Tot/MuNorm2) or a
// per-cluster scalar maintained by the engine — so scoring a candidate
// cluster costs O(1) once µ(o)·S is known.
//
// The dot products are cached in an n×k table stamped with per-cluster
// version counters: a cluster's version bumps whenever a relocation changes
// its statistics, and a cached dot is valid exactly when its stamp matches
// the cluster's current version. A candidate evaluation is therefore O(1)
// when the cluster is unchanged since the object's last scan and O(m) (one
// dot product) only on version mismatch. As the local search converges,
// moves — and hence invalidations — become rare, and whole passes run at
// O(n·k) instead of O(n·k·m).
//
// The engine maintains the global objective Σ_C J(C) by applying each
// accepted move's delta instead of re-summing per pass; tests bound the
// drift of this running value against a from-scratch recomputation at 1e-9
// relative after every pass.
//
// All scratch (scalar snapshots, the dot table, the bound tables) is
// allocated once in NewRelocEngine; Pass performs no heap allocations, so
// steady-state sweeps are allocation-free (gated by the bench harness).

// RelocKind selects the objective a RelocEngine scores and bounds.
type RelocKind int

const (
	// RelocUCPC scores ΔJ = J(C ∪ {o}) − J(C) (Theorem 3 / Corollary 1).
	RelocUCPC RelocKind = iota
	// RelocMMVar scores ΔJ_MM = J_MM(C ∪ {o}) − J_MM(C) (Proposition 2).
	RelocMMVar
)

// relocDotCacheMax caps the dot cache at 1<<26 object×cluster entries
// (768 MB of dots + stamps). Above it the engine degrades to computing
// dots on demand rather than changing the process's memory footprint
// class; the partition is identical either way.
const relocDotCacheMax = 1 << 26

// pruneSlackRel is pruneSlack rescaled for the threshold form of the
// settled test: for cand ≥ 0 (the only regime where a skip can happen),
// cand − pruneSlack·(cand + R) ≥ 0 ⟺ cand ≥ pruneSlackRel·R.
const pruneSlackRel = pruneSlack / (1 - pruneSlack)

// RelocEngine runs the sequential relocation sweeps of UCPC and MMVar over
// a flat moment store with incremental O(1) candidate scoring.
//
// With pruning enabled, two layers keep the sweep off the O(n·k·m) path:
//
//   - Settled-object filter (full Elkan-style bounds): every candidate
//     delta decomposes exactly as deltaRemove + α_c + β_c·σ²(o) + γ_c·r²
//     with r = ‖µ(o) − mean_c‖ (König–Huygens on the Corollary-1 scores).
//     After a scan that finds no improving move, the engine stores a lower
//     bound on r for every candidate (free: the scan's dots give the true
//     distances) and an upper bound on the object's distance to its own
//     mean. Each bound decays by exactly the cumulative mean movement of
//     its OWN cluster (triangle inequality, tracked by driftTot in
//     absolute-decay form — no per-pair timestamps). A later pass then
//     re-proves "no candidate improves" in O(k) dot-free scalar work
//     against the CURRENT per-cluster constants: only objects near a
//     cluster boundary, or whose nearby clusters actually moved, pay for a
//     rescan. In the convergent tail almost every object is settled, so a
//     pass costs O(n·k) cheap scalar tests instead of O(n·k·m).
//
//   - Blocked flat row kernel: a rescanned object's stale dot products are
//     recomputed against a packed k×m matrix of the cluster sum vectors
//     (sumFlat) — one vec.DotRows sweep when the whole row is stale, else
//     targeted DotBlock calls against the same matrix. The matrix is
//     L1-resident at bench scale (k=16, m=42: 5.4 KB) and its rows are
//     walked sequentially instead of pointer-chasing k per-cluster slices.
//
// Per-candidate score bounds interleaved with the scan itself were
// measured out of this engine: at m ≈ 42 an O(1) bound test costs about
// half of one dot product, so even a high hit rate returns at most tens of
// percent — the pruning dead zone. The settled filter sidesteps it by
// skipping whole objects (dots, scoring, and the removeScore at once), and
// the flat kernel makes the scans that do happen cheaper.
//
// vec.DotRows computes each row with the same DotBlock kernel the
// exhaustive path uses, so batched and per-candidate dots agree
// bit-for-bit, and the settled filter only disables work whose outcome is
// already decided: a skip proves (with slack absorbing the bound
// arithmetic's rounding) that the exhaustive sweep would keep the object
// in place too. Pruned and unpruned runs therefore produce byte-identical
// partitions.
//
// A RelocEngine drives a single sequential sweep; it is not safe for
// concurrent use.
type RelocEngine struct {
	kind    RelocKind
	mom     *uncertain.Moments
	stats   []*Stats
	n, m, k int
	pruning bool

	// Per-cluster scalar snapshot, recomputed in O(m) by refresh for the
	// (at most two) clusters an accepted move touches.
	ver    []uint32  // version counter; bumps on every refresh
	psiTot []float64 // Ψ
	phiTot []float64 // Φ
	sumSq  []float64 // ‖S‖²
	jCache []float64 // J (RelocUCPC) resp. J_MM (RelocMMVar)

	// Add-score decomposition constants (candidate delta = deltaRemove +
	// α_c + β_c·σ²(o) + γ_c·r², with r = ‖µ(o) − mean_c‖), refreshed
	// alongside the snapshot; the settled filter evaluates its bounds
	// against these current values. invSize caches 1/|C| for the
	// König–Huygens distance identity; cNorm is the mean's norm.
	cNorm   []float64 // ‖S/|C|‖
	invSize []float64 // 1/|C| (0 for an empty cluster)
	alpha   []float64
	beta    []float64
	gamma   []float64
	jMag    []float64 // |J(C)|, anchors the filter's relative slack

	// chkSlack[c] is the cluster-only part of the settled test's slack
	// threshold, precomputed per refresh so the per-candidate test is pure
	// fused arithmetic: the test "cand − ps·(|cand| + R) ≥ 0" with
	// R = jMag[c] + |J(C_co)| + γ_c·(‖µ(o)‖² + ‖mean_c‖²) + 1 passes only
	// when cand ≥ 0, where it is algebraically "cand ≥ ps/(1−ps)·R" — so
	// the filter tests cand against chkSlack[c] plus two per-object terms
	// and needs no Abs and no re-derivation of R per pass.
	chkSlack []float64

	// Remove-side bracket constants: deltaRemove = −[αR + σ²(o)·sR + γR·r²]
	// with r the object's distance to its own cluster's FULL mean (the
	// leave-one-out mean folds into the constants). Zeroed at |C| < 2,
	// where the guard in Pass skips the object anyway.
	alphaR []float64 // k
	sigmaR []float64 // k
	gammaR []float64 // k

	// Settled-object filter state. driftTot[c] accumulates the cluster
	// mean's total movement across refreshes (meanPrev holds the mean at
	// the last refresh); a distance bound written as bound+driftTot[c]
	// reads back as its exactly-decayed value bound' − driftTot[c] with no
	// per-entry timestamps. lbR[i*k+c] stores the lower bound on
	// ‖µ(o_i) − mean_c‖ in that form (−Inf = no bound, decays to the
	// trivial r ≥ 0); rCo[i] and drCo[i] store the upper bound on the
	// object's distance to its own mean and driftTot[co] at write time.
	// settled[i] records that object i's last full scan found no improving
	// move; the flag survives until the object itself relocates — the
	// stored bounds stay valid (they decay, they never break) no matter
	// how the clusters change, because the filter re-evaluates them
	// against the current constants every pass.
	settled []bool
	lbR     []float64 // n*k, nil when the dot cache is size-capped away
	rCo     []float64 // n
	drCo    []float64 // n
	// chkVer[i*k+c] stamps the cluster version under which candidate c's
	// settled verdict for object i was last proven (by bound, by exact
	// delta, or by the storing scan itself). While ver[c] and ver[co] are
	// both unchanged, every input of the verdict — the stored bound, the
	// cluster constants, and the remove-side bracket — is bit-identical to
	// the proven case, so the verdict stands without re-deriving it: the
	// whole-object settled test collapses to one row of uint32 compares
	// (a single cache line at k = 16). A bump of ver[co] invalidates the
	// whole row (the remove side feeds every test); a bump of ver[c] alone
	// re-tests just that candidate.
	chkVer   []uint32  // n*k
	meanPrev []float64 // k*m, cluster means at the last refresh
	driftTot []float64 // k, cumulative mean path length
	built    bool      // construction refreshes must not count as drift

	// Dot-product cache: dots[i*k+c] = µ(o_i)·S_c, valid iff
	// dotVer[i*k+c] == ver[c]. cached is false when n·k exceeds
	// relocDotCacheMax — then every dot is computed on demand (the PR3
	// cost profile, O(n+k) scratch) instead of growing the footprint to
	// O(n·k). A fresh and a cached dot have identical bits, so the two
	// modes produce identical partitions.
	cached bool
	dots   []float64
	dotVer []uint32

	// Flat row-kernel scratch (pruning only): sumFlat packs the k cluster
	// sum vectors into one row-major k×m matrix (kept in sync by refresh)
	// so a stale dot row is refreshed with a single vec.DotRows sweep;
	// rowScratch receives the row when the dot table is size-capped away.
	sumFlat    []float64 // k*m
	rowScratch []float64 // k

	totalJ float64 // Σ_C J(C), maintained by applied move deltas

	pruned, scanned int64
	// guarded counts object-visits skipped by the size-1 guard (relocating
	// the last member would empty the cluster). Each such visit withholds
	// its k−1 candidates from both counters, so the conservation identity
	// is pruned + scanned + guarded·(k−1) == n·(k−1)·passes.
	guarded int64
}

// NewRelocEngine builds the engine over mom for the clusters described by
// stats (which must reflect the caller's current assignment and stay owned
// by the engine afterwards). With pruning false no settled test ever fires
// and every candidate is scored (the exhaustive-reference behavior).
func NewRelocEngine(kind RelocKind, mom *uncertain.Moments, stats []*Stats, pruning bool) *RelocEngine {
	n, m, k := mom.Len(), mom.Dims(), len(stats)
	e := &RelocEngine{
		kind:    kind,
		mom:     mom,
		stats:   stats,
		n:       n,
		m:       m,
		k:       k,
		pruning: pruning,
		ver:     make([]uint32, k),
		psiTot:  make([]float64, k),
		phiTot:  make([]float64, k),
		sumSq:   make([]float64, k),
		jCache:  make([]float64, k),
		cNorm:   make([]float64, k),
		invSize: make([]float64, k),
		alpha:   make([]float64, k),
		beta:    make([]float64, k),
		gamma:   make([]float64, k),
		jMag:    make([]float64, k),
		cached:  n <= relocDotCacheMax/k,
	}
	// The O(n·k) tables come out of one float64 and one uint32 slab each:
	// a single zeroed allocation faults fewer fresh pages than four, and
	// construction is on the measured online path of every Cluster call.
	if e.cached {
		if pruning {
			f := make([]float64, 2*n*k)
			e.dots, e.lbR = f[:n*k:n*k], f[n*k:]
			u := make([]uint32, 2*n*k)
			e.dotVer, e.chkVer = u[:n*k:n*k], u[n*k:]
		} else {
			e.dots = make([]float64, n*k)
			e.dotVer = make([]uint32, n*k)
		}
	}
	if pruning {
		e.chkSlack = make([]float64, k)
		e.alphaR = make([]float64, k)
		e.sigmaR = make([]float64, k)
		e.gammaR = make([]float64, k)
		e.settled = make([]bool, n)
		f := make([]float64, 2*n+2*k*m+2*k)
		e.rCo, f = f[:n:n], f[n:]
		e.drCo, f = f[:n:n], f[n:]
		e.meanPrev, f = f[:k*m:k*m], f[k*m:]
		e.sumFlat, f = f[:k*m:k*m], f[k*m:]
		e.driftTot, f = f[:k:k], f[k:]
		e.rowScratch = f
	}
	for c := range stats {
		e.refresh(c)
	}
	e.built = true
	for c := range stats {
		e.totalJ += e.jCache[c]
	}
	return e
}

// refresh recomputes cluster c's scalar snapshot (and bound constants) from
// its per-dimension statistics in O(m) and bumps the cluster's version,
// invalidating every cached dot product against it.
func (e *RelocEngine) refresh(c int) {
	s := e.stats[c]
	// One fused sweep over the three statistics arrays; each accumulator
	// still sums in ascending j, so the totals are bit-identical to three
	// separate loops.
	sumArr := s.sum
	psiArr, phiArr := s.psi[:len(sumArr)], s.phi[:len(sumArr)]
	var psi, phi, ss float64
	for j, v := range sumArr {
		psi += psiArr[j]
		phi += phiArr[j]
		ss += v * v
	}
	e.psiTot[c], e.phiTot[c], e.sumSq[c] = psi, phi, ss
	e.ver[c]++

	if s.size == 0 {
		// Relocation never empties a cluster; keep the snapshot inert. An
		// α of −Inf makes every settled test against this cluster fail, so
		// objects rescan (and score the empty candidate exactly) until it
		// gains members.
		if e.pruning {
			// Keep the packed sum matrix in sync for the flat row kernel.
			copy(e.sumFlat[c*e.m:(c+1)*e.m], sumArr)
		}
		e.jCache[c] = 0
		e.cNorm[c], e.invSize[c] = 0, 0
		e.alpha[c], e.beta[c], e.gamma[c], e.jMag[c] = math.Inf(-1), 0, 0, 0
		if e.pruning {
			e.chkSlack[c] = 0
		}
		return
	}
	n := float64(s.size)
	inv := 1 / n
	juk := phi - ss*inv
	switch e.kind {
	case RelocMMVar:
		e.jCache[c] = juk * inv
	default: // RelocUCPC
		e.jCache[c] = psi*inv + juk
	}
	if !e.pruning {
		return
	}
	// One more fused sweep: sync the packed sum matrix for the flat row
	// kernel, accumulate the mean's movement (so the distance bounds decay
	// by exactly the drift since they were written — triangle inequality),
	// and snapshot the new mean. Construction-time refreshes seed the
	// snapshot without counting drift — there is no earlier bound to decay.
	row := e.meanPrev[c*e.m : (c+1)*e.m : (c+1)*e.m]
	flat := e.sumFlat[c*e.m : (c+1)*e.m : (c+1)*e.m]
	var d2 float64
	for j, v := range sumArr {
		flat[j] = v
		mj := v * inv
		dv := mj - row[j]
		d2 += dv * dv
		row[j] = mj
	}
	if e.built {
		e.driftTot[c] += math.Sqrt(d2)
	}
	e.cNorm[c] = math.Sqrt(ss) * inv
	e.invSize[c] = inv
	switch e.kind {
	case RelocMMVar:
		e.alpha[c] = -juk / (n * (n + 1))
		e.beta[c] = 1 / (n + 1)
		e.gamma[c] = n / ((n + 1) * (n + 1))
	default: // RelocUCPC
		e.alpha[c] = psi/(n+1) - psi/n
		e.beta[c] = 1/(n+1) + 1
		e.gamma[c] = n / (n + 1)
	}
	e.jMag[c] = math.Abs(e.jCache[c])
	e.chkSlack[c] = pruneSlackRel * (e.jMag[c] + e.gamma[c]*e.cNorm[c]*e.cNorm[c] + 1)
	// Remove-side bracket constants (deltaRemove = −[αR + σ²(o)·sR + γR·r²],
	// r to the full mean). Undefined at size 1 — zero them; the size-1
	// guard in Pass skips such a cluster's only member anyway, and by the
	// time it regrows these are refreshed.
	if s.size >= 2 {
		nm1 := n - 1
		switch e.kind {
		case RelocMMVar:
			e.alphaR[c] = -juk / (n * nm1)
			e.sigmaR[c] = 1 / nm1
			e.gammaR[c] = n / (nm1 * nm1)
		default: // RelocUCPC
			e.alphaR[c] = -psi / (n * nm1)
			e.sigmaR[c] = 1/nm1 + 1
			e.gammaR[c] = n / nm1
		}
	} else {
		e.alphaR[c], e.sigmaR[c], e.gammaR[c] = 0, 0, 0
	}
}

// dot returns µ(o_i)·S_c from the cache, recomputing and re-stamping it on
// version mismatch (or always, when the cache is size-capped away).
func (e *RelocEngine) dot(i, c int) float64 {
	if !e.cached {
		return e.mom.MuDot(i, e.stats[c].sum)
	}
	idx := i*e.k + c
	if e.dotVer[idx] != e.ver[c] {
		e.dots[idx] = e.mom.MuDot(i, e.stats[c].sum)
		e.dotVer[idx] = e.ver[c]
	}
	return e.dots[idx]
}

// addScore returns J(C_c ∪ {o}) (resp. J_MM) in O(1) from the scalar
// snapshot and the object scalars.
func (e *RelocEngine) addScore(c int, sig2o, m2t, mun2, dot float64) float64 {
	inv := 1 / (float64(e.stats[c].size) + 1)
	uk := (e.phiTot[c] + m2t) - (e.sumSq[c]+2*dot+mun2)*inv
	if e.kind == RelocMMVar {
		return uk * inv
	}
	return (e.psiTot[c]+sig2o)*inv + uk
}

// removeScore returns J(C_c \ {o}) (resp. J_MM) in O(1); the caller
// guarantees |C_c| ≥ 2.
func (e *RelocEngine) removeScore(c int, sig2o, m2t, mun2, dot float64) float64 {
	inv := 1 / (float64(e.stats[c].size) - 1)
	uk := (e.phiTot[c] - m2t) - (e.sumSq[c]-2*dot+mun2)*inv
	if e.kind == RelocMMVar {
		return uk * inv
	}
	return (e.psiTot[c]-sig2o)*inv + uk
}

// Pass runs one full relocation sweep (Algorithm 1, Lines 5-15): each
// object is tentatively moved to the candidate cluster with the most
// negative total delta, moves are applied immediately (the paper's
// sequential local search), and the running objective is updated by each
// applied delta. It returns the number of relocations applied. minImprove
// guards termination: a move is applied only when its improvement exceeds
// minImprove relative to the magnitude of the clusters involved.
//
// With pruning on, a settled object (previous scan found no improving
// move) first re-proves that verdict in O(k) dot-free work: for every
// candidate, the exactly-decayed distance lower bound feeds the
// α + β·σ²(o) + γ·r² decomposition against the cluster's CURRENT
// constants, and the object's own remove gain is bounded through its
// decayed distance upper bound. Only when some candidate's bound dips
// below zero (minus slack) does the object rescan. A rescanning object
// refreshes its stale dot products in bulk — one vec.DotRows sweep over
// the packed sumFlat matrix when most of the row is stale, targeted
// DotBlock calls against the same matrix otherwise — then scores every
// candidate exactly in O(1) and re-stores its bounds (the scan's dots
// give every true distance for free via König–Huygens). Engine fields are
// hoisted into locals because Go will not inline multi-argument method
// calls into a loop this hot.
//
// The filter never decides a comparison: a settled skip proves no
// candidate improves at all (so the exhaustive sweep would keep the object
// in place too, for any minImprove ≥ 0), with a relative slack absorbing
// the bound arithmetic's rounding, and the flat row kernel produces
// bit-identical dots through the same DotBlock kernel the exhaustive path
// uses. Pruned and unpruned runs therefore produce byte-identical
// partitions.
func (e *RelocEngine) Pass(ctx context.Context, assign []int, minImprove float64) (int, error) {
	k := e.k
	moves := 0
	mom := e.mom
	m := e.m
	cached := e.cached
	ver, dots, dotVer := e.ver, e.dots, e.dotVer
	sumFlat := e.sumFlat
	jCache := e.jCache
	lbR, driftTot := e.lbR, e.driftTot
	alpha, beta, gamma, jMag, cNorm, invSize := e.alpha, e.beta, e.gamma, e.jMag, e.cNorm, e.invSize
	chkSlack, chkVer := e.chkSlack, e.chkVer
	var prunedN, scannedN int64
	for i := 0; i < e.n; i++ {
		if i%ctxCheckStride == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				e.pruned += prunedN
				e.scanned += scannedN
				return moves, err
			}
		}
		co := assign[i]
		if e.stats[co].size == 1 {
			// Relocating the only member would empty the cluster;
			// Algorithm 1 keeps k clusters, so skip. Any stored bounds
			// keep decaying and stay valid for when the cluster regrows.
			e.guarded++
			continue
		}
		sig2o := mom.TotalVar(i)
		mun2 := mom.MuNorm2(i)
		m2t := mom.Mu2Tot(i)
		base := i * k
		if e.pruning && lbR != nil && e.settled[i] {
			// Settled-object filter. Fast path: a verdict stamped under the
			// current versions of both the candidate and the object's own
			// cluster is still proven — nothing it depended on changed — so
			// an object whose whole stamp row is current skips in one
			// cache line of uint32 compares, no float arithmetic at all.
			chkRow := chkVer[base : base+k : base+k]
			remStale := chkRow[co] != ver[co]
			anyStale := remStale
			if !anyStale {
				for c := 0; c < k; c++ {
					if chkRow[c] != ver[c] {
						anyStale = true
						break
					}
				}
			}
			if !anyStale {
				prunedN += int64(k - 1)
				continue
			}
			// Slow path: lower-bound each stale candidate's delta with
			// current constants and exactly-decayed distance bounds. (A
			// bump of ver[co] re-tests every candidate: the remove side
			// feeds each verdict.) The test escalates Elkan-style instead
			// of giving up: a first bound failure buys one fresh dot on the
			// object's OWN cluster (replacing the decayed remove-side upper
			// bound with the exact remove gain, and re-anchoring the stored
			// distance), a still-failing candidate buys its own fresh dot
			// and an exact delta — bit-identical to the one a full scan
			// would compute, so the comparison against zero needs no
			// slack — and reseeds its pair bound. Only a candidate whose
			// exact delta is negative forces the full scan below (which
			// reuses every dot just computed from the cache). Verdicts from
			// looser remove-side bounds stay sound after a tightening, so
			// stamps never need rewinding.
			rUB := e.rCo[i] + (driftTot[co] - e.drCo[i])
			rem := e.alphaR[co] + sig2o*e.sigmaR[co] + e.gammaR[co]*rUB*rUB
			slackCo := pruneSlackRel * jMag[co]
			slackMu := pruneSlackRel * mun2
			exact := false
			settledOK := true
			for c := 0; c < k; c++ {
				if c == co {
					continue
				}
				if !remStale && chkRow[c] == ver[c] {
					continue
				}
				lb := lbR[base+c] - driftTot[c]
				if lb < 0 {
					lb = 0
				}
				cand := alpha[c] + beta[c]*sig2o + gamma[c]*(lb*lb) - rem
				if cand >= chkSlack[c]+slackCo+gamma[c]*slackMu {
					chkRow[c] = ver[c]
					continue
				}
				if !exact {
					// Tighten the remove side once, then retry this
					// candidate with the exact rem.
					exact = true
					var dotCoF float64
					if cached {
						if dotVer[base+co] == ver[co] {
							dotCoF = dots[base+co]
						} else {
							dotCoF = vec.DotBlock(mom.Mu(i), sumFlat[co*m:(co+1)*m])
							dots[base+co] = dotCoF
							dotVer[base+co] = ver[co]
						}
					} else {
						dotCoF = vec.DotBlock(mom.Mu(i), sumFlat[co*m:(co+1)*m])
					}
					rem = -(e.removeScore(co, sig2o, m2t, mun2, dotCoF) - jCache[co])
					mqCo := cNorm[co] * cNorm[co]
					r2Co := mun2 - 2*dotCoF*invSize[co] + mqCo + pruneSlack*(mun2+mqCo+1)
					if r2Co > 0 {
						e.rCo[i] = math.Sqrt(r2Co)
					} else {
						e.rCo[i] = 0
					}
					e.drCo[i] = driftTot[co]
					c--
					continue
				}
				var dotC float64
				if cached {
					if dotVer[base+c] == ver[c] {
						dotC = dots[base+c]
					} else {
						dotC = vec.DotBlock(mom.Mu(i), sumFlat[c*m:(c+1)*m])
						dots[base+c] = dotC
						dotVer[base+c] = ver[c]
					}
				} else {
					dotC = vec.DotBlock(mom.Mu(i), sumFlat[c*m:(c+1)*m])
				}
				if invSize[c] > 0 {
					mq := cNorm[c] * cNorm[c]
					r2 := mun2 - 2*dotC*invSize[c] + mq - pruneSlack*(mun2+mq+1)
					lbv := driftTot[c]
					if r2 > 0 {
						lbv += math.Sqrt(r2)
					}
					lbR[base+c] = lbv
				}
				delta := -rem + e.addScore(c, sig2o, m2t, mun2, dotC) - jCache[c]
				if delta < 0 {
					settledOK = false
					break
				}
				chkRow[c] = ver[c]
			}
			if settledOK {
				chkRow[co] = ver[co]
				prunedN += int64(k - 1)
				continue
			}
		}
		var dotCo float64
		var row []float64
		if e.pruning {
			// Bulk-refresh the object's dot row. A mostly-stale row (the
			// early-pass regime, where every move invalidates two
			// clusters' dots for all n objects) is recomputed in one
			// sequential vec.DotRows sweep over the L1-resident sumFlat
			// matrix; a row with few stale entries gets targeted DotBlock
			// calls against the same matrix. Either way the loop below
			// sees only fresh dots.
			if cached {
				row = dots[base : base+k : base+k]
				stale := 0
				for c := 0; c < k; c++ {
					if dotVer[base+c] != ver[c] {
						stale++
					}
				}
				if stale > 0 {
					if stale*4 >= 3*k {
						vec.DotRows(row, mom.Mu(i), sumFlat, m)
						for c := 0; c < k; c++ {
							dotVer[base+c] = ver[c]
						}
					} else {
						mu := mom.Mu(i)
						for c := 0; c < k; c++ {
							if dotVer[base+c] != ver[c] {
								row[c] = vec.DotBlock(mu, sumFlat[c*m:(c+1)*m])
								dotVer[base+c] = ver[c]
							}
						}
					}
				}
			} else {
				// Dot table size-capped away: recompute the whole row into
				// the per-engine scratch (the O(n+k) footprint mode).
				row = e.rowScratch
				vec.DotRows(row, mom.Mu(i), sumFlat, m)
			}
			dotCo = row[co]
		} else {
			dotCo = e.dot(i, co)
		}
		jCoRemoved := e.removeScore(co, sig2o, m2t, mun2, dotCo)
		deltaRemove := jCoRemoved - jCache[co]

		best := co
		bestDelta := 0.0
		for c := 0; c < k; c++ {
			if c == co {
				continue
			}
			var dot float64
			if row != nil {
				dot = row[c]
			} else if cached && dotVer[base+c] == ver[c] {
				dot = dots[base+c]
			} else {
				dot = vec.DotBlock(mom.Mu(i), e.stats[c].sum)
				if cached {
					dots[base+c] = dot
					dotVer[base+c] = ver[c]
				}
			}
			scannedN++
			delta := deltaRemove + e.addScore(c, sig2o, m2t, mun2, dot) - jCache[c]
			if delta < bestDelta {
				bestDelta = delta
				best = c
			}
		}
		if best != co {
			// Require a real improvement, relative to the magnitude of the
			// involved terms, to guarantee termination (Proposition 4).
			scale := math.Abs(jCache[co]) + math.Abs(jCache[best]) + 1
			if -bestDelta > minImprove*scale {
				// Apply the relocation: O(m) statistics updates
				// (Corollary 1) and O(m) snapshot refreshes for the two
				// touched clusters only.
				mu, mu2, sig := mom.Mu(i), mom.Mu2(i), mom.Sigma2(i)
				oldJ := jCache[co] + jCache[best]
				e.stats[co].RemoveRow(mu, mu2, sig)
				e.stats[best].AddRow(mu, mu2, sig)
				e.refresh(co)
				e.refresh(best)
				e.totalJ += jCache[co] + jCache[best] - oldJ
				assign[i] = best
				if e.pruning {
					e.settled[i] = false // new cluster: bounds must re-seed
				}
				moves++
				continue
			}
		}
		// No improving move: the scan's fresh dots give every candidate's
		// true distance for free (König–Huygens r² = ‖µ‖² − 2·µ·S/|C| +
		// ‖mean‖²), so store the settled bounds — lower bounds (deflated
		// by the slack margin) for candidates, an upper bound (inflated)
		// for the object's own cluster — in absolute-decay form.
		if e.pruning && lbR != nil {
			e.settled[i] = true
			chkVer[base+co] = ver[co]
			mqCo := cNorm[co] * cNorm[co]
			r2Co := mun2 - 2*dotCo*invSize[co] + mqCo + pruneSlack*(mun2+mqCo+1)
			if r2Co > 0 {
				e.rCo[i] = math.Sqrt(r2Co)
			} else {
				e.rCo[i] = 0
			}
			e.drCo[i] = driftTot[co]
			for c := 0; c < k; c++ {
				if c == co {
					continue
				}
				if invSize[c] == 0 {
					// Empty candidate: no mean to measure against. −Inf
					// decays to the trivial bound r ≥ 0, which stays
					// sound whatever the cluster becomes.
					lbR[base+c] = math.Inf(-1)
					continue
				}
				mq := cNorm[c] * cNorm[c]
				r2 := mun2 - 2*row[c]*invSize[c] + mq - pruneSlack*(mun2+mq+1)
				lb := driftTot[c]
				if r2 > 0 {
					lb += math.Sqrt(r2)
				}
				lbR[base+c] = lb
				chkVer[base+c] = ver[c]
			}
		}
	}
	e.pruned += prunedN
	e.scanned += scannedN
	return moves, nil
}

// Objective returns the delta-maintained global objective Σ_C J(C)
// (resp. Σ_C J_MM(C)).
func (e *RelocEngine) Objective() float64 { return e.totalJ }

// RecomputeObjective re-derives the global objective from the per-cluster
// statistics (O(k·m)); tests use it to bound the drift of the
// delta-maintained value.
func (e *RelocEngine) RecomputeObjective() float64 {
	var v float64
	for c := range e.stats {
		switch e.kind {
		case RelocMMVar:
			v += e.stats[c].JMM()
		default:
			v += e.stats[c].J()
		}
	}
	return v
}

// Size returns |C_c|.
func (e *RelocEngine) Size(c int) int { return e.stats[c].size }

// Counters returns the cumulative (pruned, scanned) candidate counts.
func (e *RelocEngine) Counters() (pruned, scanned int64) {
	return e.pruned, e.scanned
}

// Guarded returns the cumulative number of object-visits skipped by the
// size-1 guard. Together with Counters it closes the per-pass accounting:
// pruned + scanned + Guarded()·(k−1) == n·(k−1)·passes.
func (e *RelocEngine) Guarded() int64 { return e.guarded }
