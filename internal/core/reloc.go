package core

import (
	"context"
	"math"

	"ucpc/internal/uncertain"
)

// This file implements the incremental-statistics relocation engine behind
// UCPC (Algorithm 1) and MMVar. The key observation is that the Theorem-3 /
// Corollary-1 objective of a cluster depends on its per-dimension sums only
// through three scalars,
//
//	Ψ = Σ_j Ψ^{(j)}   (total variance sum)
//	Φ = Σ_j Φ^{(j)}   (total second-moment sum)
//	‖S‖² = Σ_j (S^{(j)})²   (squared norm of the mean sum)
//
// because J(C) = Ψ/|C| + Φ − ‖S‖²/|C| (and J_UK, J_MM likewise). The add
// and remove scores then reduce to
//
//	J(C ∪ {o}) = (Ψ + σ²(o))/(|C|+1) + Φ + φ(o)
//	             − (‖S‖² + 2·µ(o)·S + ‖µ(o)‖²)/(|C|+1)
//	J(C \ {o}) = (Ψ − σ²(o))/(|C|−1) + Φ − φ(o)
//	             − (‖S‖² − 2·µ(o)·S + ‖µ(o)‖²)/(|C|−1)
//
// with φ(o) = Σ_j (µ₂)_j(o). Every term except the dot product µ(o)·S is a
// precomputed per-object scalar (Moments.TotalVar/Mu2Tot/MuNorm2) or a
// per-cluster scalar maintained by the engine — so scoring a candidate
// cluster costs O(1) once µ(o)·S is known.
//
// The dot products are cached in an n×k table stamped with per-cluster
// version counters: a cluster's version bumps whenever a relocation changes
// its statistics, and a cached dot is valid exactly when its stamp matches
// the cluster's current version. A candidate evaluation is therefore O(1)
// when the cluster is unchanged since the object's last scan and O(m) (one
// dot product) only on version mismatch. As the local search converges,
// moves — and hence invalidations — become rare, and whole passes run at
// O(n·k) instead of O(n·k·m).
//
// The engine maintains the global objective Σ_C J(C) by applying each
// accepted move's delta instead of re-summing per pass; tests bound the
// drift of this running value against a from-scratch recomputation at 1e-9
// relative after every pass.
//
// All scratch (scalar snapshots, the dot table, bound constants) is
// allocated once in NewRelocEngine; Pass performs no heap allocations, so
// steady-state sweeps are allocation-free (gated by the bench harness).

// RelocKind selects the objective a RelocEngine scores and bounds.
type RelocKind int

const (
	// RelocUCPC scores ΔJ = J(C ∪ {o}) − J(C) (Theorem 3 / Corollary 1).
	RelocUCPC RelocKind = iota
	// RelocMMVar scores ΔJ_MM = J_MM(C ∪ {o}) − J_MM(C) (Proposition 2).
	RelocMMVar
)

// relocDotCacheMax caps the dot cache at 1<<26 object×cluster entries
// (768 MB of dots + stamps). Above it the engine degrades to computing
// dots on demand rather than changing the process's memory footprint
// class; the partition is identical either way.
const relocDotCacheMax = 1 << 26

// RelocEngine runs the sequential relocation sweeps of UCPC and MMVar over
// a flat moment store with incremental O(1) candidate scoring.
//
// With pruning enabled, candidates whose cached dot product is stale are
// first tested against the O(1) reverse-triangle lower bound on their
// add-score (the same α + β·σ²(o) + γ·r² decomposition the PR2 RelocFilter
// used): a stale candidate that provably cannot beat the best move found so
// far is skipped without paying the O(m) dot product. Candidates with a
// fresh cached dot are scored directly — the exact score is as cheap as the
// bound. The bound only disables work, never decides a comparison the
// exhaustive scan would decide differently (a relative slack absorbs the
// bound arithmetic's rounding), so pruned and unpruned runs produce
// byte-identical partitions.
//
// A RelocEngine drives a single sequential sweep; it is not safe for
// concurrent use.
type RelocEngine struct {
	kind    RelocKind
	mom     *uncertain.Moments
	stats   []*Stats
	n, m, k int
	pruning bool

	// Per-cluster scalar snapshot, recomputed in O(m) by refresh for the
	// (at most two) clusters an accepted move touches.
	ver    []uint32  // version counter; bumps on every refresh
	psiTot []float64 // Ψ
	phiTot []float64 // Φ
	sumSq  []float64 // ‖S‖²
	jCache []float64 // J (RelocUCPC) resp. J_MM (RelocMMVar)

	// Pruning bound constants (see skip), refreshed alongside the snapshot.
	cNorm []float64 // ‖S/|C|‖
	alpha []float64
	beta  []float64
	gamma []float64
	jMag  []float64

	// Dot-product cache: dots[i*k+c] = µ(o_i)·S_c, valid iff
	// dotVer[i*k+c] == ver[c]. cached is false when n·k exceeds
	// relocDotCacheMax — then every dot is computed on demand (the PR3
	// cost profile, O(n+k) scratch) instead of growing the footprint to
	// O(n·k). A fresh and a cached dot have identical bits, so the two
	// modes produce identical partitions.
	cached bool
	dots   []float64
	dotVer []uint32

	// Bound-test targeting: verPass snapshots ver at the start of each
	// pass, and active[c] records whether cluster c's statistics changed
	// during the previous pass. Bound skips are only attempted against
	// active clusters — a settled cluster's dot is computed once and then
	// served from cache forever, which beats re-proving the same skip with
	// an O(1) bound on every pass. This is what makes the filter pay for
	// itself instead of fighting the cache.
	verPass []uint32
	active  []bool

	// Auto-disable: a failed bound test costs about half of the dot
	// product it tries to avoid, so the bound only pays while its hit rate
	// stays high. Pass tracks per-pass tested/pruned counts and switches
	// the bound off for the rest of the run once fewer than half the tests
	// succeed — the bound is exact, so the partition is unaffected.
	boundOff bool
	tested   int64

	totalJ float64 // Σ_C J(C), maintained by applied move deltas

	pruned, scanned int64
}

// NewRelocEngine builds the engine over mom for the clusters described by
// stats (which must reflect the caller's current assignment and stay owned
// by the engine afterwards). With pruning false no bound test ever fires
// and every candidate is scored (the exhaustive-reference behavior).
func NewRelocEngine(kind RelocKind, mom *uncertain.Moments, stats []*Stats, pruning bool) *RelocEngine {
	n, m, k := mom.Len(), mom.Dims(), len(stats)
	e := &RelocEngine{
		kind:    kind,
		mom:     mom,
		stats:   stats,
		n:       n,
		m:       m,
		k:       k,
		pruning: pruning,
		ver:     make([]uint32, k),
		psiTot:  make([]float64, k),
		phiTot:  make([]float64, k),
		sumSq:   make([]float64, k),
		jCache:  make([]float64, k),
		cNorm:   make([]float64, k),
		alpha:   make([]float64, k),
		beta:    make([]float64, k),
		gamma:   make([]float64, k),
		jMag:    make([]float64, k),
		cached:  n <= relocDotCacheMax/k,
		verPass: make([]uint32, k),
		active:  make([]bool, k),
	}
	if e.cached {
		e.dots = make([]float64, n*k)
		e.dotVer = make([]uint32, n*k)
	}
	for c := range stats {
		e.refresh(c)
	}
	for c := range stats {
		e.totalJ += e.jCache[c]
	}
	return e
}

// refresh recomputes cluster c's scalar snapshot (and bound constants) from
// its per-dimension statistics in O(m) and bumps the cluster's version,
// invalidating every cached dot product against it.
func (e *RelocEngine) refresh(c int) {
	s := e.stats[c]
	var psi, phi, ss float64
	for _, v := range s.psi {
		psi += v
	}
	for _, v := range s.phi {
		phi += v
	}
	for _, v := range s.sum {
		ss += v * v
	}
	e.psiTot[c], e.phiTot[c], e.sumSq[c] = psi, phi, ss
	e.ver[c]++

	if s.size == 0 {
		// Relocation never empties a cluster; keep the snapshot inert.
		e.jCache[c] = 0
		e.cNorm[c], e.alpha[c], e.beta[c], e.gamma[c], e.jMag[c] = 0, math.Inf(-1), 0, 0, 0
		return
	}
	n := float64(s.size)
	inv := 1 / n
	juk := phi - ss*inv
	switch e.kind {
	case RelocMMVar:
		e.jCache[c] = juk * inv
	default: // RelocUCPC
		e.jCache[c] = psi*inv + juk
	}
	if !e.pruning {
		return
	}
	e.cNorm[c] = math.Sqrt(ss) * inv
	switch e.kind {
	case RelocMMVar:
		e.alpha[c] = -juk / (n * (n + 1))
		e.beta[c] = 1 / (n + 1)
		e.gamma[c] = n / ((n + 1) * (n + 1))
	default: // RelocUCPC
		e.alpha[c] = psi/(n+1) - psi/n
		e.beta[c] = 1/(n+1) + 1
		e.gamma[c] = n / (n + 1)
	}
	e.jMag[c] = math.Abs(e.jCache[c])
}

// dot returns µ(o_i)·S_c from the cache, recomputing and re-stamping it on
// version mismatch (or always, when the cache is size-capped away).
func (e *RelocEngine) dot(i, c int) float64 {
	if !e.cached {
		return e.mom.MuDot(i, e.stats[c].sum)
	}
	idx := i*e.k + c
	if e.dotVer[idx] != e.ver[c] {
		e.dots[idx] = e.mom.MuDot(i, e.stats[c].sum)
		e.dotVer[idx] = e.ver[c]
	}
	return e.dots[idx]
}

// addScore returns J(C_c ∪ {o}) (resp. J_MM) in O(1) from the scalar
// snapshot and the object scalars.
func (e *RelocEngine) addScore(c int, sig2o, m2t, mun2, dot float64) float64 {
	inv := 1 / (float64(e.stats[c].size) + 1)
	uk := (e.phiTot[c] + m2t) - (e.sumSq[c]+2*dot+mun2)*inv
	if e.kind == RelocMMVar {
		return uk * inv
	}
	return (e.psiTot[c]+sig2o)*inv + uk
}

// removeScore returns J(C_c \ {o}) (resp. J_MM) in O(1); the caller
// guarantees |C_c| ≥ 2.
func (e *RelocEngine) removeScore(c int, sig2o, m2t, mun2, dot float64) float64 {
	inv := 1 / (float64(e.stats[c].size) - 1)
	uk := (e.phiTot[c] - m2t) - (e.sumSq[c]-2*dot+mun2)*inv
	if e.kind == RelocMMVar {
		return uk * inv
	}
	return (e.psiTot[c]-sig2o)*inv + uk
}

// skip reports whether stale candidate c can be skipped for object i: true
// only when the O(1) lower bound on deltaRemove + addScore(c) provably
// cannot beat bestDelta. The slack is anchored on the magnitudes of the two
// involved objectives (coMag, jMag[c]) because the exact deltas are
// differences of J-sized sums whose rounding scales with those magnitudes.
func (e *RelocEngine) skip(i, c int, sig2o, deltaRemove, bestDelta, coMag float64) bool {
	d := e.mom.MuNorm(i) - e.cNorm[c]
	glb := e.alpha[c] + e.beta[c]*sig2o + e.gamma[c]*(d*d)
	cand := deltaRemove + glb
	slack := pruneSlack * (math.Abs(cand) + math.Abs(bestDelta) + e.jMag[c] + coMag + 1)
	return cand-slack >= bestDelta
}

// Pass runs one full relocation sweep (Algorithm 1, Lines 5-15): each
// object is tentatively moved to the candidate cluster with the most
// negative total delta, moves are applied immediately (the paper's
// sequential local search), and the running objective is updated by each
// applied delta. It returns the number of relocations applied. minImprove
// guards termination: a move is applied only when its improvement exceeds
// minImprove relative to the magnitude of the clusters involved.
func (e *RelocEngine) Pass(ctx context.Context, assign []int, minImprove float64) (int, error) {
	// A cluster is an eligible bound-skip target this pass iff its version
	// moved during the previous pass (first pass: everything is active,
	// nothing is cached yet).
	for c := 0; c < e.k; c++ {
		e.active[c] = e.ver[c] != e.verPass[c]
		e.verPass[c] = e.ver[c]
	}
	testedBefore, prunedBefore := e.tested, e.pruned
	moves := 0
	for i := 0; i < e.n; i++ {
		if i%ctxCheckStride == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				return moves, err
			}
		}
		co := assign[i]
		if e.stats[co].size == 1 {
			// Relocating the only member would empty the cluster;
			// Algorithm 1 keeps k clusters, so skip.
			continue
		}
		sig2o := e.mom.TotalVar(i)
		m2t := e.mom.Mu2Tot(i)
		mun2 := e.mom.MuNorm2(i)
		jCoRemoved := e.removeScore(co, sig2o, m2t, mun2, e.dot(i, co))
		deltaRemove := jCoRemoved - e.jCache[co]
		coMag := math.Abs(e.jCache[co])

		best := co
		bestDelta := 0.0
		base := i * e.k
		for c := 0; c < e.k; c++ {
			if c == co {
				continue
			}
			var dot float64
			if e.cached && e.dotVer[base+c] == e.ver[c] {
				dot = e.dots[base+c]
			} else {
				// Active = changed during the previous pass or already
				// during this one; only those are worth bound-testing (a
				// settled cluster's dot is computed once and cached).
				// Without a cache there is nothing to forfeit, so every
				// cluster is bound-testable.
				if e.pruning && !e.boundOff && (!e.cached || e.active[c] || e.ver[c] != e.verPass[c]) {
					e.tested++
					if e.skip(i, c, sig2o, deltaRemove, bestDelta, coMag) {
						e.pruned++
						continue
					}
				}
				dot = e.dot(i, c) // computes and, when cached, re-stamps
			}
			e.scanned++
			delta := deltaRemove + e.addScore(c, sig2o, m2t, mun2, dot) - e.jCache[c]
			if delta < bestDelta {
				bestDelta = delta
				best = c
			}
		}
		if best == co {
			continue
		}
		// Require a real improvement, relative to the magnitude of the
		// involved terms, to guarantee termination (Proposition 4).
		scale := math.Abs(e.jCache[co]) + math.Abs(e.jCache[best]) + 1
		if -bestDelta <= minImprove*scale {
			continue
		}
		// Apply the relocation: O(m) statistics updates (Corollary 1) and
		// O(m) snapshot refreshes for the two touched clusters only.
		mu, mu2, sig := e.mom.Mu(i), e.mom.Mu2(i), e.mom.Sigma2(i)
		oldJ := e.jCache[co] + e.jCache[best]
		e.stats[co].RemoveRow(mu, mu2, sig)
		e.stats[best].AddRow(mu, mu2, sig)
		e.refresh(co)
		e.refresh(best)
		e.totalJ += e.jCache[co] + e.jCache[best] - oldJ
		assign[i] = best
		moves++
	}
	if !e.boundOff {
		if tested := e.tested - testedBefore; tested > 0 && 2*(e.pruned-prunedBefore) < tested {
			e.boundOff = true
		}
	}
	return moves, nil
}

// Objective returns the delta-maintained global objective Σ_C J(C)
// (resp. Σ_C J_MM(C)).
func (e *RelocEngine) Objective() float64 { return e.totalJ }

// RecomputeObjective re-derives the global objective from the per-cluster
// statistics (O(k·m)); tests use it to bound the drift of the
// delta-maintained value.
func (e *RelocEngine) RecomputeObjective() float64 {
	var v float64
	for c := range e.stats {
		switch e.kind {
		case RelocMMVar:
			v += e.stats[c].JMM()
		default:
			v += e.stats[c].J()
		}
	}
	return v
}

// Size returns |C_c|.
func (e *RelocEngine) Size(c int) int { return e.stats[c].size }

// Counters returns the cumulative (pruned, scanned) candidate counts.
func (e *RelocEngine) Counters() (pruned, scanned int64) {
	return e.pruned, e.scanned
}
