package core

import (
	"math"
	"testing"
	"testing/quick"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// Corollary 1: JIfAdd/JIfRemove must agree with recomputing the statistics
// from scratch.
func TestCorollary1Incremental(t *testing.T) {
	r := rng.New(1000)
	for trial := 0; trial < 50; trial++ {
		objs := randomCluster(r, 3+r.Intn(8), 1+r.Intn(4))
		s := NewStatsOf(objs[:len(objs)-1])
		extra := objs[len(objs)-1]

		// Add path.
		predicted := s.JIfAdd(extra)
		direct := NewStatsOf(objs).J()
		if math.Abs(predicted-direct) > 1e-9*(1+math.Abs(direct)) {
			t.Fatalf("trial %d: JIfAdd %v vs recompute %v", trial, predicted, direct)
		}

		// Remove path.
		full := NewStatsOf(objs)
		predictedRem := full.JIfRemove(extra)
		directRem := s.J()
		if math.Abs(predictedRem-directRem) > 1e-9*(1+math.Abs(directRem)) {
			t.Fatalf("trial %d: JIfRemove %v vs recompute %v", trial, predictedRem, directRem)
		}
	}
}

// Add followed by Remove of the same object must restore J (up to fp noise).
func TestAddRemoveInvolution(t *testing.T) {
	r := rng.New(1100)
	objs := randomCluster(r, 6, 3)
	s := NewStatsOf(objs[:5])
	before := s.J()
	s.Add(objs[5])
	s.Remove(objs[5])
	after := s.J()
	if math.Abs(before-after) > 1e-9*(1+math.Abs(before)) {
		t.Errorf("J drifted from %v to %v after add+remove", before, after)
	}
	if s.Size() != 5 {
		t.Errorf("size = %d", s.Size())
	}
}

// Mutating sequence equivalence: interleaved Add/Remove equals batch
// construction of the surviving set (property-based).
func TestStatsSequenceProperty(t *testing.T) {
	r := rng.New(1200)
	pool := randomCluster(r, 12, 2)
	f := func(ops [12]bool) bool {
		s := NewStats(2)
		in := make(map[int]bool)
		for i, add := range ops {
			if add {
				if !in[i] {
					s.Add(pool[i])
					in[i] = true
				}
			} else if in[i] {
				s.Remove(pool[i])
				in[i] = false
			}
		}
		var members []*uncertain.Object
		for i := range pool {
			if in[i] {
				members = append(members, pool[i])
			}
		}
		if len(members) == 0 {
			return s.J() == 0 && s.Size() == 0
		}
		want := NewStatsOf(members).J()
		return math.Abs(s.J()-want) <= 1e-8*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// J must always dominate J_UK (they differ by the non-negative mean
// variance term of Theorem 3).
func TestJDominatesJUK(t *testing.T) {
	r := rng.New(1300)
	for trial := 0; trial < 30; trial++ {
		objs := randomCluster(r, 2+r.Intn(10), 1+r.Intn(4))
		s := NewStatsOf(objs)
		if s.J() < s.JUK()-1e-9 {
			t.Fatalf("J = %v < J_UK = %v", s.J(), s.JUK())
		}
		gap := s.J() - s.JUK()
		want := s.SumVariance() / float64(s.Size())
		if math.Abs(gap-want) > 1e-9*(1+want) {
			t.Fatalf("J − J_UK = %v, want Σσ²/|C| = %v", gap, want)
		}
	}
}

// For deterministic objects J reduces to the classical k-means
// within-cluster sum of squares.
func TestJDeterministicReducesToWCSS(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {2, 0}, {1, 3}}
	objs := make([]*uncertain.Object, len(pts))
	for i, p := range pts {
		objs[i] = uncertain.FromPoint(i, p)
	}
	s := NewStatsOf(objs)
	centroid := vec.Mean(pts)
	var wcss float64
	for _, p := range pts {
		wcss += vec.SqDist(p, centroid)
	}
	if math.Abs(s.J()-wcss) > 1e-9 {
		t.Errorf("J = %v, want WCSS = %v", s.J(), wcss)
	}
	if math.Abs(s.JUK()-wcss) > 1e-9 {
		t.Errorf("J_UK = %v, want WCSS = %v", s.JUK(), wcss)
	}
}

func TestStatsSingleton(t *testing.T) {
	r := rng.New(1400)
	o := randomCluster(r, 1, 3)[0]
	s := NewStatsOf([]*uncertain.Object{o})
	// For |C| = 1 the U-centroid is the object itself; J = σ²(o)
	// (Theorem 3: σ²/1 + Σµ₂ − Σµ² = σ² + σ²... check: Ψ/1 + Φ − Υ/1 =
	// σ² + µ₂ − µ² = 2σ²).
	want := 2 * o.TotalVar()
	if math.Abs(s.J()-want) > 1e-9*(1+want) {
		t.Errorf("singleton J = %v, want 2σ² = %v", s.J(), want)
	}
	if s.JIfRemove(o) != 0 {
		t.Error("JIfRemove on singleton should be 0")
	}
}

func TestStatsCloneIndependent(t *testing.T) {
	r := rng.New(1500)
	objs := randomCluster(r, 5, 2)
	s := NewStatsOf(objs)
	c := s.Clone()
	c.Remove(objs[0])
	if s.Size() != 5 || c.Size() != 4 {
		t.Errorf("sizes %d/%d after clone mutation", s.Size(), c.Size())
	}
}

func TestRemoveFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty remove")
		}
	}()
	r := rng.New(1)
	NewStats(2).Remove(randomCluster(r, 1, 2)[0])
}

func TestEmptyStatsZero(t *testing.T) {
	s := NewStats(3)
	if s.J() != 0 || s.JUK() != 0 || s.JMM() != 0 || s.SumVariance() != 0 {
		t.Error("empty stats must score zero")
	}
}

func TestObjectiveHelper(t *testing.T) {
	r := rng.New(1600)
	objs := randomCluster(r, 8, 2)
	ds := uncertain.Dataset(objs)
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1}
	total := Objective(ds, assign, 2)
	want := NewStatsOf(objs[:4]).J() + NewStatsOf(objs[4:]).J()
	if math.Abs(total-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("Objective = %v, want %v", total, want)
	}
}
