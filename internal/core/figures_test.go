package core

import (
	"math"
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/uncertain"
)

// mk1D builds a 1-D uncertain object with the given mean and variance
// (uniform marginal of matching width).
func mk1D(id int, mu, sigma2 float64) *uncertain.Object {
	if sigma2 == 0 {
		return uncertain.FromPoint(id, []float64{mu})
	}
	width := math.Sqrt(12 * sigma2)
	return uncertain.NewObject(id, []dist.Distribution{dist.NewUniformAround(mu, width)})
}

// Figure 1 scenario: two clusters with the same central tendency but
// different variances. J_UK cannot tell them apart (Proposition 1); J ranks
// the lower-variance cluster as more compact.
func TestFigure1JDiscriminatesVariance(t *testing.T) {
	lowVar := []*uncertain.Object{mk1D(0, -1, 0.2), mk1D(1, 1, 0.2)}
	highVar := []*uncertain.Object{mk1D(2, -1, 5.0), mk1D(3, 1, 5.0)}

	sLow, sHigh := NewStatsOf(lowVar), NewStatsOf(highVar)
	if sLow.J() >= sHigh.J() {
		t.Errorf("J does not favor the low-variance cluster: %v vs %v", sLow.J(), sHigh.J())
	}
	// The UK-means objective differs only through µ₂ = σ² + µ², so it
	// does see *some* difference here; the Prop-1 counterexample (equal
	// µ₂ sums) is exercised in TestProp1Counterexample. What must hold
	// here is that J's gap includes the extra Σσ²/|C| term.
	gapJ := sHigh.J() - sLow.J()
	gapJUK := sHigh.JUK() - sLow.JUK()
	wantExtra := (sHigh.SumVariance() - sLow.SumVariance()) / 2
	if diff := gapJ - gapJUK - wantExtra; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("J gap %v ≠ J_UK gap %v + Σσ² term %v", gapJ, gapJUK, wantExtra)
	}
}

// Figure 2 scenario: objects with different central tendencies. Cluster (a)
// holds two low-variance objects far apart; cluster (b) holds two
// higher-variance objects close together. A variance-only criterion
// (Theorem 2 / §4.2.1, or MMVar-style averaging of σ²) prefers (a) —
// wrongly — while J recognizes (b) as the more compact cluster.
func TestFigure2VarianceOnlyCriterionFails(t *testing.T) {
	farLowVar := []*uncertain.Object{mk1D(0, -10, 0.1), mk1D(1, 10, 0.1)}
	nearHighVar := []*uncertain.Object{mk1D(2, -0.5, 1.0), mk1D(3, 0.5, 1.0)}

	// Variance-only criterion: σ²(C̄) = |C|⁻²Σσ² (Theorem 2).
	varOnlyFar := NewUCentroid(farLowVar).TotalVar()
	varOnlyNear := NewUCentroid(nearHighVar).TotalVar()
	if varOnlyFar >= varOnlyNear {
		t.Fatalf("scenario broken: variance-only should prefer the far/low-variance cluster (%v vs %v)",
			varOnlyFar, varOnlyNear)
	}

	// J must invert the preference: the near/high-variance cluster is
	// genuinely more compact.
	jFar := NewStatsOf(farLowVar).J()
	jNear := NewStatsOf(nearHighVar).J()
	if jNear >= jFar {
		t.Errorf("J does not prefer the near cluster: %v vs %v", jNear, jFar)
	}
}

// Figure 3 scenario: the U-centroid realization for a specific joint draw
// equals the member average (the arg-min of summed squared distances).
func TestFigure3RealizationIsArgmin(t *testing.T) {
	objs := []*uncertain.Object{
		uncertain.NewObject(0, []dist.Distribution{dist.NewUniform(0, 2), dist.NewUniform(0, 2)}),
		uncertain.NewObject(1, []dist.Distribution{dist.NewUniform(4, 6), dist.NewUniform(0, 2)}),
		uncertain.NewObject(2, []dist.Distribution{dist.NewUniform(2, 4), dist.NewUniform(4, 6)}),
	}
	// A concrete joint draw (x′, x″, x‴):
	draw := [][]float64{{1, 1}, {5, 0.5}, {3, 5}}
	// The centroid realization must be the average (3, 2.1666…).
	want := []float64{(1 + 5 + 3) / 3.0, (1 + 0.5 + 5) / 3.0}
	// Verify it minimizes g(y) = Σ‖y−xᵢ‖² against perturbations.
	g := func(y []float64) float64 {
		var s float64
		for _, x := range draw {
			dx, dy := y[0]-x[0], y[1]-x[1]
			s += dx*dx + dy*dy
		}
		return s
	}
	base := g(want)
	for _, eps := range []float64{0.1, -0.1, 0.01, -0.01} {
		if g([]float64{want[0] + eps, want[1]}) <= base {
			t.Errorf("perturbation %v along x does not increase g", eps)
		}
		if g([]float64{want[0], want[1] + eps}) <= base {
			t.Errorf("perturbation %v along y does not increase g", eps)
		}
	}
	// And the region of the U-centroid contains it (Theorem 1).
	u := NewUCentroid(objs)
	if !u.Region().Contains(want) {
		t.Errorf("realization %v outside U-centroid region %+v", want, u.Region())
	}
}
