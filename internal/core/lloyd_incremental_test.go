package core

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// TestCentroidScoresIncrementalBitIdentical proves the dirty-cluster
// refresh exactly behavior-preserving: an incremental centroidScores and a
// force-full one driven through the same assignment trajectory — including
// emptied clusters that trigger the reseed path — produce bit-identical
// means, biases and objectives after every refresh.
func TestCentroidScoresIncrementalBitIdentical(t *testing.T) {
	r := rng.New(314)
	ds := uncertain.Dataset(randomCluster(r, 80, 3))
	mom := uncertain.MomentsOf(ds)
	n, m, k := mom.Len(), mom.Dims(), 5

	inc := newCentroidScores(k, m, n)
	full := newCentroidScores(k, m, n)
	full.forceFull = true

	aInc := clustering.RandomPartition(n, k, rng.New(9))
	aFull := append([]int(nil), aInc...)

	check := func(round int) {
		t.Helper()
		for i := range aInc {
			if aInc[i] != aFull[i] {
				t.Fatalf("round %d: post-reseed assignments diverge at object %d", round, i)
			}
		}
		for j := range inc.mean {
			if inc.mean[j] != full.mean[j] {
				t.Fatalf("round %d: mean[%d] = %v (incremental) vs %v (full)", round, j, inc.mean[j], full.mean[j])
			}
		}
		for c := range inc.bias {
			if inc.bias[c] != full.bias[c] {
				t.Fatalf("round %d: bias[%d] = %v (incremental) vs %v (full)", round, c, inc.bias[c], full.bias[c])
			}
		}
		if inc.objective() != full.objective() {
			t.Fatalf("round %d: objective %v (incremental) vs %v (full)", round, inc.objective(), full.objective())
		}
	}

	inc.refresh(mom, aInc)
	full.refresh(mom, aFull)
	check(0)

	for round := 1; round <= 12; round++ {
		// Perturb: move a handful of random objects; every third round,
		// empty one cluster entirely to force the reseed path.
		rr := rng.New(uint64(round) * 77)
		for moves := 0; moves < 5; moves++ {
			aInc[rr.Intn(n)] = rr.Intn(k)
		}
		if round%3 == 0 {
			victim := rr.Intn(k)
			for i := range aInc {
				if aInc[i] == victim {
					aInc[i] = (victim + 1) % k
				}
			}
		}
		copy(aFull, aInc)
		inc.refresh(mom, aInc)
		full.refresh(mom, aFull)
		check(round)
	}
}

// TestLloydObjectiveFromSums is UCPC-Lloyd's part of the incremental-
// objective property test: for every iteration count (i.e. after every
// pass), the objective reported from the maintained per-cluster sums
// matches a from-scratch recomputation of the returned partition within
// 1e-9 relative — across 3 seeds and 2 datasets.
func TestLloydObjectiveFromSums(t *testing.T) {
	for _, seed := range []uint64{1, 42, 977} {
		for _, tc := range relocTestCases(seed) {
			for maxIter := 1; maxIter <= 6; maxIter++ {
				rep, err := (&UCPCLloyd{MaxIter: maxIter, Workers: 1}).Cluster(context.Background(), tc.ds, tc.k, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				want := Objective(tc.ds, rep.Partition.Assign, tc.k)
				if rel := math.Abs(rep.Objective-want) / (math.Abs(want) + 1); rel > 1e-9 {
					t.Fatalf("%s seed %d maxIter %d: sums objective %g vs from-scratch %g (rel %g)",
						tc.name, seed, maxIter, rep.Objective, want, rel)
				}
				if rep.Converged {
					break
				}
			}
		}
	}
}

// TestUCentroidAssignState cross-checks the exported bench helper against
// first principles: the centers must be the per-cluster mean of µ rows and
// the adds the U-centroid total variances σ²(C̄) of Lemma 5 / Theorem 2.
func TestUCentroidAssignState(t *testing.T) {
	r := rng.New(202)
	ds := uncertain.Dataset(randomCluster(r, 40, 2))
	mom := uncertain.MomentsOf(ds)
	k := 3
	assign := clustering.RandomPartition(mom.Len(), k, rng.New(4))
	centers := make([]float64, k*mom.Dims())
	adds := make([]float64, k)
	UCentroidAssignState(mom, assign, k, centers, adds)

	members := (clustering.Partition{K: k, Assign: assign}).Members()
	for c := 0; c < k; c++ {
		objs := make([]*uncertain.Object, len(members[c]))
		for i, idx := range members[c] {
			objs[i] = ds[idx]
		}
		u := NewUCentroid(objs)
		for j, v := range u.Mean() {
			if diff := math.Abs(centers[c*mom.Dims()+j] - v); diff > 1e-12*(math.Abs(v)+1) {
				t.Errorf("cluster %d mean[%d]: %v vs U-centroid %v", c, j, centers[c*mom.Dims()+j], v)
			}
		}
		if want := u.TotalVar(); math.Abs(adds[c]-want) > 1e-9*(math.Abs(want)+1) {
			t.Errorf("cluster %d add: %v vs σ²(C̄) %v", c, adds[c], want)
		}
	}
}
