package core

import (
	"math"
	"testing"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// pruneTestMoments builds a moment store over nGroups well-separated groups
// (the regime where pruning actually fires) with some overlap noise.
func pruneTestMoments(seed uint64, nGroups, perGroup, m int) *uncertain.Moments {
	r := rng.New(seed)
	ds := separableDataset(r, nGroups, perGroup, m)
	return uncertain.MomentsOf(ds)
}

// driftCenters moves every center a small random step, mimicking the
// centroid updates between assignment passes.
func driftCenters(r *rng.RNG, centers []float64, step float64) {
	for j := range centers {
		centers[j] += r.Normal(0, step)
	}
}

// TestAssignerMatchesExhaustive drives a pruned and an unpruned Assigner
// through identical multi-pass center sequences (including additive terms)
// and requires bit-identical assignments and changed flags on every pass,
// with a non-trivial amount of pruning.
func TestAssignerMatchesExhaustive(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		k, m := 5, 3
		mom := pruneTestMoments(seed, k, 40, m)
		n := mom.Len()
		r := rng.New(seed ^ 0xbeef)

		centers := make([]float64, k*m)
		adds := make([]float64, k)
		for c := 0; c < k; c++ {
			for j := 0; j < m; j++ {
				centers[c*m+j] = 10*float64(c) + r.Normal(0, 1)
			}
			adds[c] = r.Float64() * 2
		}

		pruner := NewAssigner(mom, k, true)
		exhaust := NewAssigner(mom, k, false)
		ap := make([]int, n)
		ae := make([]int, n)
		for i := range ap {
			ap[i], ae[i] = -1, -1
		}

		for pass := 0; pass < 8; pass++ {
			pruner.SetCenters(centers, adds)
			exhaust.SetCenters(centers, adds)
			chP := pruner.Assign(ap, 3)
			chE := exhaust.Assign(ae, 1)
			if chP != chE {
				t.Fatalf("seed %d pass %d: changed flags differ (pruned %v, exhaustive %v)", seed, pass, chP, chE)
			}
			for i := range ap {
				if ap[i] != ae[i] {
					t.Fatalf("seed %d pass %d object %d: pruned %d vs exhaustive %d", seed, pass, i, ap[i], ae[i])
				}
			}
			driftCenters(r, centers, 0.2)
			for c := range adds {
				adds[c] = math.Abs(adds[c] + r.Normal(0, 0.05))
			}
		}
		pruned, scanned := pruner.Counters()
		if pruned == 0 {
			t.Errorf("seed %d: no candidates pruned (scanned %d)", seed, scanned)
		}
		if scanned == 0 {
			t.Errorf("seed %d: no candidates scanned", seed)
		}
	}
}

// TestAssignerWorkerInvariance: the pruned engine is deterministic across
// worker-pool sizes, including its counters.
func TestAssignerWorkerInvariance(t *testing.T) {
	k, m := 4, 2
	mom := pruneTestMoments(11, k, 50, m)
	n := mom.Len()
	r := rng.New(77)
	centers := make([]float64, k*m)
	for c := 0; c < k; c++ {
		for j := 0; j < m; j++ {
			centers[c*m+j] = 10*float64(c) + r.Normal(0, 1)
		}
	}

	run := func(workers int) ([]int, int64, int64) {
		eng := NewAssigner(mom, k, true)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = -1
		}
		cs := append([]float64(nil), centers...)
		rr := rng.New(5)
		for pass := 0; pass < 5; pass++ {
			eng.SetCenters(cs, nil)
			eng.Assign(assign, workers)
			driftCenters(rr, cs, 0.1)
		}
		p, s := eng.Counters()
		return assign, p, s
	}

	base, bp, bs := run(1)
	for _, w := range []int{2, 5, 0} {
		got, gp, gs := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: object %d differs", w, i)
			}
		}
		if gp != bp || gs != bs {
			t.Errorf("workers=%d: counters (%d,%d) vs (%d,%d)", w, gp, gs, bp, bs)
		}
	}
}

// TestAssignerInvalidate: an external reassignment (the Lloyd reseed path)
// followed by Invalidate must not poison later passes.
func TestAssignerInvalidate(t *testing.T) {
	k, m := 3, 2
	mom := pruneTestMoments(21, k, 30, m)
	n := mom.Len()
	centers := make([]float64, k*m)
	for c := 0; c < k; c++ {
		centers[c*m], centers[c*m+1] = 10*float64(c), 10*float64(c)
	}

	pruner := NewAssigner(mom, k, true)
	exhaust := NewAssigner(mom, k, false)
	ap := make([]int, n)
	ae := make([]int, n)
	pruner.SetCenters(centers, nil)
	exhaust.SetCenters(centers, nil)
	pruner.Assign(ap, 2)
	exhaust.Assign(ae, 1)

	// Externally move a few objects (both copies), as a reseed would.
	r := rng.New(9)
	for moves := 0; moves < 5; moves++ {
		i := r.Intn(n)
		c := r.Intn(k)
		ap[i], ae[i] = c, c
		pruner.Invalidate(i)
	}
	driftCenters(r, centers, 0.3)
	pruner.SetCenters(centers, nil)
	exhaust.SetCenters(centers, nil)
	pruner.Assign(ap, 2)
	exhaust.Assign(ae, 1)
	for i := range ap {
		if ap[i] != ae[i] {
			t.Fatalf("object %d: pruned %d vs exhaustive %d after invalidate", i, ap[i], ae[i])
		}
	}
}

// TestRelocBoundHolds verifies the relocation engine's skip bound directly:
// for random clusters and objects, the O(1) reverse-triangle lower bound
// never exceeds the exact Corollary-1 add-score it stands in for — neither
// the engine's own scalar-form score nor the row-form reference (modulo the
// slack, which only weakens the bound).
func TestRelocBoundHolds(t *testing.T) {
	r := rng.New(31)
	ds := separableDataset(r, 4, 25, 3)
	mom := uncertain.MomentsOf(ds)
	n := mom.Len()
	k := 4
	assign := make([]int, n)
	for i := range assign {
		assign[i] = r.Intn(k)
	}

	for _, kind := range []RelocKind{RelocUCPC, RelocMMVar} {
		stats := make([]*Stats, k)
		for c := range stats {
			stats[c] = NewStats(mom.Dims())
		}
		for i := 0; i < n; i++ {
			stats[assign[i]].AddRow(mom.Mu(i), mom.Mu2(i), mom.Sigma2(i))
		}
		e := NewRelocEngine(kind, mom, stats, true)
		for i := 0; i < n; i++ {
			sigma2o := mom.TotalVar(i)
			m2t, mun2 := mom.Mu2Tot(i), mom.MuNorm2(i)
			mu, mu2 := mom.Mu(i), mom.Mu2(i)
			for c := 0; c < k; c++ {
				var rowForm float64
				if kind == RelocUCPC {
					rowForm = stats[c].JIfAddRow(mu, mu2, mom.Sigma2(i)) - stats[c].J()
				} else {
					rowForm = stats[c].JMMIfAddRow(mu, mu2) - stats[c].JMM()
				}
				scalarForm := e.addScore(c, sigma2o, m2t, mun2, e.dot(i, c)) - e.jCache[c]
				d := mom.MuNorm(i) - e.cNorm[c]
				glb := e.alpha[c] + e.beta[c]*sigma2o + e.gamma[c]*(d*d)
				for _, exact := range []float64{rowForm, scalarForm} {
					slack := 1e-9 * (math.Abs(glb) + math.Abs(exact) + 1)
					if glb-slack > exact {
						t.Fatalf("kind %d object %d cluster %d: lower bound %g exceeds exact add-score %g", kind, i, c, glb, exact)
					}
				}
				if rel := math.Abs(scalarForm-rowForm) / (math.Abs(rowForm) + 1); rel > 1e-9 {
					t.Fatalf("kind %d object %d cluster %d: scalar add-score %g vs row-form %g (rel %g)", kind, i, c, scalarForm, rowForm, rel)
				}
			}
		}
	}
}

// TestBlockBoxesCoverRows: every µ row lies inside its block's box.
func TestBlockBoxesCoverRows(t *testing.T) {
	mom := pruneTestMoments(41, 3, 21, 4) // 63 objects: a ragged final block
	boxes := NewAssigner(mom, 3, true).boxes
	want := (mom.Len() + pruneBlock - 1) / pruneBlock
	if len(boxes) != want {
		t.Fatalf("%d boxes, want %d", len(boxes), want)
	}
	for i := 0; i < mom.Len(); i++ {
		if !boxes[i/pruneBlock].Contains(vec.Vector(mom.Mu(i))) {
			t.Errorf("object %d outside its block box", i)
		}
	}
}
