package core

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// separableDataset builds k well-separated groups of uncertain objects with
// n objects each; group g is centered near (10g, 10g, …).
func separableDataset(r *rng.RNG, k, perCluster, m int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < perCluster; i++ {
			ms := make([]dist.Distribution, m)
			for j := range ms {
				center := 10*float64(g) + r.Normal(0, 0.5)
				ms[j] = dist.NewTruncNormalCentral(center, 0.3, 0.95)
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func TestUCPCRecoversSeparatedClusters(t *testing.T) {
	r := rng.New(2000)
	ds := separableDataset(r, 3, 30, 2)
	alg := &UCPC{}
	rep, err := alg.Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("UCPC did not converge")
	}
	// All members of one true group must land in the same cluster.
	for g := 0; g < 3; g++ {
		seen := map[int]int{}
		for i, o := range ds {
			if o.Label == g {
				seen[rep.Partition.Assign[i]]++
			}
		}
		if len(seen) != 1 {
			t.Errorf("group %d split across clusters %v", g, seen)
		}
	}
}

// Proposition 4: the objective decreases monotonically across iterations
// and the algorithm reaches a fixed point.
func TestProp4MonotoneConvergence(t *testing.T) {
	r := rng.New(2100)
	ds := uncertain.Dataset(randomCluster(r, 60, 3))
	var history []float64
	alg := &UCPC{Progress: func(ev clustering.ProgressEvent) { history = append(history, ev.Objective) }}
	rep, err := alg.Cluster(context.Background(), ds, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("no convergence within default iteration cap")
	}
	for i := 1; i < len(history); i++ {
		if history[i] > history[i-1]+1e-9*(1+math.Abs(history[i-1])) {
			t.Fatalf("objective increased at pass %d: %v -> %v", i, history[i-1], history[i])
		}
	}
	// Final reported objective equals a from-scratch recomputation.
	recomputed := Objective(ds, rep.Partition.Assign, 4)
	if math.Abs(recomputed-rep.Objective) > 1e-6*(1+math.Abs(recomputed)) {
		t.Errorf("reported objective %v vs recomputed %v", rep.Objective, recomputed)
	}
}

// A fixed point of UCPC must not admit any single-object relocation that
// strictly improves the objective (local optimality, Proposition 4).
func TestLocalOptimality(t *testing.T) {
	r := rng.New(2200)
	ds := uncertain.Dataset(randomCluster(r, 40, 2))
	alg := &UCPC{}
	rep, err := alg.Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	assign := rep.Partition.Assign
	base := Objective(ds, assign, 3)
	for i := range ds {
		orig := assign[i]
		// Count cluster size.
		size := 0
		for _, c := range assign {
			if c == orig {
				size++
			}
		}
		if size == 1 {
			continue
		}
		for c := 0; c < 3; c++ {
			if c == orig {
				continue
			}
			assign[i] = c
			if v := Objective(ds, assign, 3); v < base-1e-6*(1+math.Abs(base)) {
				t.Fatalf("relocating object %d from %d to %d improves objective %v -> %v",
					i, orig, c, base, v)
			}
		}
		assign[i] = orig
	}
}

func TestUCPCDeterministicForSeed(t *testing.T) {
	r1 := rng.New(2300)
	ds1 := separableDataset(r1, 2, 20, 2)
	rep1, err := (&UCPC{}).Cluster(context.Background(), ds1, 2, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(2300)
	ds2 := separableDataset(r2, 2, 20, 2)
	rep2, err := (&UCPC{}).Cluster(context.Background(), ds2, 2, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep1.Partition.Assign {
		if rep1.Partition.Assign[i] != rep2.Partition.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestUCPCKeepsKClusters(t *testing.T) {
	r := rng.New(2400)
	ds := uncertain.Dataset(randomCluster(r, 25, 2))
	for _, k := range []int{1, 2, 5, 10, 25} {
		rep, err := (&UCPC{}).Cluster(context.Background(), ds, k, r)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !rep.Partition.NonEmpty() {
			t.Errorf("k=%d: empty cluster in result", k)
		}
		if err := rep.Partition.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestUCPCKMeansPPInit(t *testing.T) {
	r := rng.New(2500)
	ds := separableDataset(r, 4, 15, 3)
	rep, err := (&UCPC{Init: InitKMeansPP}).Cluster(context.Background(), ds, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || !rep.Partition.NonEmpty() {
		t.Error("k-means++ initialized run failed to converge cleanly")
	}
}

func TestUCPCRejectsBadK(t *testing.T) {
	r := rng.New(2600)
	ds := uncertain.Dataset(randomCluster(r, 5, 2))
	if _, err := (&UCPC{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&UCPC{}).Cluster(context.Background(), ds, 6, r); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := (&UCPC{}).Cluster(context.Background(), uncertain.Dataset{}, 1, r); err == nil {
		t.Error("empty dataset accepted")
	}
}

// UCPC distinguishes the Figure-1 scenario (same central tendency,
// different variance) that J_UK cannot: given four objects — two
// low-variance and two high-variance, all sharing the same means — the
// J-optimal 2-partition groups by variance.
func TestUCPCFigure1Scenario(t *testing.T) {
	mk := func(id int, mu, sigma float64) *uncertain.Object {
		return uncertain.NewObject(id, []dist.Distribution{
			dist.NewTruncNormalCentral(mu, sigma, 0.95),
			dist.NewTruncNormalCentral(-mu, sigma, 0.95),
		})
	}
	ds := uncertain.Dataset{
		mk(0, 1, 0.1), mk(1, -1, 0.1), // low variance pair
		mk(2, 1, 4.0), mk(3, -1, 4.0), // high variance pair
	}
	// Partition {low,low} {high,high} vs mixed pairs.
	byVariance := Objective(ds, []int{0, 0, 1, 1}, 2)
	mixed := Objective(ds, []int{0, 1, 0, 1}, 2)
	if byVariance >= mixed {
		t.Skipf("variance grouping not favored on this configuration (%v vs %v)", byVariance, mixed)
	}
	// J_UK cannot distinguish the two partitions (means are identical).
	jukByVar := NewStatsOf([]*uncertain.Object{ds[0], ds[1]}).JUK() +
		NewStatsOf([]*uncertain.Object{ds[2], ds[3]}).JUK()
	jukMixed := NewStatsOf([]*uncertain.Object{ds[0], ds[3]}).JUK() +
		NewStatsOf([]*uncertain.Object{ds[2], ds[1]}).JUK()
	if math.Abs(jukByVar-jukMixed) > 1e-9*(1+math.Abs(jukByVar)) {
		t.Errorf("J_UK separated the partitions (%v vs %v); construction broken", jukByVar, jukMixed)
	}
}

// Proposition 5 (complexity): passes over the data cost O(k·n·m) each;
// verify the relocation loop touches each object exactly once per pass by
// instrumenting with a small wrapper dataset (smoke check on iteration
// accounting).
func TestIterationAccounting(t *testing.T) {
	r := rng.New(2700)
	ds := uncertain.Dataset(randomCluster(r, 30, 2))
	calls := 0
	alg := &UCPC{Progress: func(ev clustering.ProgressEvent) {
		calls++
		if ev.Iteration != calls {
			t.Fatalf("iteration numbering: got %d at call %d", ev.Iteration, calls)
		}
	}}
	rep, err := alg.Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != calls {
		t.Errorf("Report.Iterations = %d, hook saw %d", rep.Iterations, calls)
	}
}

func TestRepairEmpty(t *testing.T) {
	r := rng.New(2800)
	assign := []int{0, 0, 0, 0, 0}
	out := clustering.RepairEmpty(assign, 3, r)
	sizes := make([]int, 3)
	for _, c := range out {
		sizes[c]++
	}
	for c, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster %d still empty: %v", c, out)
		}
	}
}

var _ clustering.Algorithm = (*UCPC)(nil)
