package core

import (
	"math"

	"ucpc/internal/uncertain"
)

// WStats maintains, for k clusters, the *weighted* generalization of the
// Theorem-3 sufficient statistics that drives the mini-batch streaming
// engine (internal/stream):
//
//	W_c = Σ w_o                (effective member weight)
//	S_c = Σ w_o µ(o)           (weighted mean sum, k×m)
//	Ψ_c = Σ w_o σ²(o)          (weighted total-variance sum, scalar)
//	Φ_c = Σ w_o Σ_j (µ₂)_j(o)  (weighted second-moment sum, scalar)
//
// Fresh observations enter with weight 1 (AddAssigned); Scale(λ) multiplies
// every statistic by λ, which is how the stream's per-batch exponential
// forgetting is realized. With λ = 1 the statistics are the plain
// cumulative sums, so the centroid read-out
//
//	mean_c = S_c / W_c,   add_c = Ψ_c / W_c²   (Theorem 2, weighted)
//
// reduces exactly to the batch U-centroid of the observed members — the
// classic mini-batch k-means 1/n_c learning-rate schedule falls out of the
// same sums. All state is allocated once in NewWStats; Scale, AddAssigned,
// and CentersInto perform no heap allocations.
type WStats struct {
	k, m int
	w    []float64 // k, W_c
	sum  []float64 // k*m, S_c row-major
	psi  []float64 // k, Ψ_c
	phi  []float64 // k, Φ_c
}

// NewWStats returns empty weighted statistics for k clusters of
// m-dimensional objects.
func NewWStats(k, m int) *WStats {
	return &WStats{
		k:   k,
		m:   m,
		w:   make([]float64, k),
		sum: make([]float64, k*m),
		psi: make([]float64, k),
		phi: make([]float64, k),
	}
}

// K returns the cluster count.
func (ws *WStats) K() int { return ws.k }

// Dims returns the dimensionality m.
func (ws *WStats) Dims() int { return ws.m }

// Weight returns cluster c's effective member weight W_c.
func (ws *WStats) Weight(c int) float64 { return ws.w[c] }

// Zero clears every statistic. The streaming engine's seed-refinement loop
// rebuilds the seeding window's statistics from scratch each Lloyd
// iteration; Zero is that rebuild's starting point.
func (ws *WStats) Zero() {
	for c := range ws.w {
		ws.w[c], ws.psi[c], ws.phi[c] = 0, 0, 0
	}
	for i := range ws.sum {
		ws.sum[i] = 0
	}
}

// CopyFrom overwrites every statistic with o's (same k and m required) —
// the seed-restart machinery snapshots and restores candidate states with
// it.
func (ws *WStats) CopyFrom(o *WStats) {
	if ws.k != o.k || ws.m != o.m {
		panic("core: WStats.CopyFrom shape mismatch")
	}
	copy(ws.w, o.w)
	copy(ws.sum, o.sum)
	copy(ws.psi, o.psi)
	copy(ws.phi, o.phi)
}

// Merge folds o's statistics into ws cluster-by-cluster: every statistic of
// o's cluster c is added to ws's cluster c (same k and m required). Because
// the statistics are plain sums, Merge is the exact combiner for a sharded
// fit — merging the per-shard sums and reading the centroids out is the
// same arithmetic as accumulating every object in one engine, up to
// floating-point reassociation. Identity-mapped; see MergeMapped for the
// reconciled form.
func (ws *WStats) Merge(o *WStats) {
	ws.MergeMapped(o, nil)
}

// MergeMapped folds o's statistics into ws under a cluster correspondence:
// o's cluster c lands in ws's cluster onto[c] (nil onto = identity). The
// shard coordinator computes onto by greedy centroid matching so that
// shards which discovered the same structure under different label orders
// merge structure-to-structure rather than label-to-label. onto must be a
// permutation of [0, k); entries are trusted (internal API — the
// coordinator constructs them).
func (ws *WStats) MergeMapped(o *WStats, onto []int) {
	if ws.k != o.k || ws.m != o.m {
		panic("core: WStats.MergeMapped shape mismatch")
	}
	m := ws.m
	for c := 0; c < o.k; c++ {
		d := c
		if onto != nil {
			d = onto[c]
		}
		ws.w[d] += o.w[c]
		ws.psi[d] += o.psi[c]
		ws.phi[d] += o.phi[c]
		src := o.sum[c*m : (c+1)*m]
		dst := ws.sum[d*m : (d+1)*m]
		for j, v := range src {
			dst[j] += v
		}
	}
}

// MeanInto writes cluster c's read-out mean S_c/W_c into dst and reports
// whether the cluster has any weight (a zero-weight cluster has no read-out
// position; dst is left untouched).
func (ws *WStats) MeanInto(c int, dst []float64) bool {
	if ws.w[c] <= 0 {
		return false
	}
	inv := 1 / ws.w[c]
	row := ws.sum[c*ws.m : (c+1)*ws.m]
	for j, v := range row {
		dst[j] = v * inv
	}
	return true
}

// Scale multiplies every cluster's statistics by lambda — the per-batch
// exponential forgetting step (lambda = 1 − Decay).
func (ws *WStats) Scale(lambda float64) {
	for c := range ws.w {
		ws.w[c] *= lambda
		ws.psi[c] *= lambda
		ws.phi[c] *= lambda
	}
	for i := range ws.sum {
		ws.sum[i] *= lambda
	}
}

// AddAssigned folds every resident row of mom into its assigned cluster
// with weight 1 (noise rows, assign[i] < 0, are skipped) — the batch-update
// entry point the streaming engine calls once per mini-batch.
func (ws *WStats) AddAssigned(mom *uncertain.Moments, assign []int) {
	m := ws.m
	for i := 0; i < mom.Len(); i++ {
		c := assign[i]
		if c < 0 {
			continue
		}
		mu := mom.Mu(i)
		row := ws.sum[c*m : (c+1)*m]
		for j, v := range mu {
			row[j] += v
		}
		ws.w[c]++
		ws.psi[c] += mom.TotalVar(i)
		ws.phi[c] += mom.Mu2Tot(i)
	}
}

// SeedCluster installs cluster c's statistics directly (warm starts from a
// frozen model): weight W_c, mean sum = weight·mean, Ψ_c = sumVar. A
// frozen model does not carry the within-cluster dispersion of member
// means, so Φ_c is reconstructed as if the seed were W objects sitting at
// the mean with per-object variance Ψ/W (Φ = W·‖mean‖² + Ψ) — the unique
// choice consistent with the seeded S, W, and Ψ; the objective estimate
// therefore counts the seed's variance mass but not its (unrecoverable)
// mean spread. The caller is responsible for keeping its own
// authoritative copy of the seed centroid — re-deriving mean from S_c/W_c
// rounds differently than the seed's own bits (see the streaming engine's
// touched-cluster policy).
func (ws *WStats) SeedCluster(c int, mean []float64, weight, sumVar float64) {
	row := ws.sum[c*ws.m : (c+1)*ws.m]
	var nrm2 float64
	for j, v := range mean {
		row[j] = v * weight
		nrm2 += v * v
	}
	ws.w[c] = weight
	ws.psi[c] = sumVar
	ws.phi[c] = weight*nrm2 + sumVar
}

// CentersInto fills the flat centroid state the assignment engine scores
// against: mean_c = S_c/W_c and add_c = Ψ_c/W_c² (the weighted Theorem-2
// U-centroid variance). Clusters with zero weight keep their previous
// means/adds entries untouched — the streaming engine leaves them at their
// last known position so a temporarily starved cluster can still win
// objects later instead of dying with an infinite additive term.
func (ws *WStats) CentersInto(means, adds []float64) {
	m := ws.m
	for c := 0; c < ws.k; c++ {
		if ws.w[c] <= 0 {
			continue
		}
		inv := 1 / ws.w[c]
		row := ws.sum[c*m : (c+1)*m]
		dst := means[c*m : (c+1)*m]
		for j, v := range row {
			dst[j] = v * inv
		}
		adds[c] = ws.psi[c] * inv * inv
	}
}

// EstimateJ returns the weighted analogue of the Theorem-3 objective,
//
//	Σ_c [ Ψ_c/W_c + Φ_c − ‖S_c‖²/W_c ],
//
// which for λ = 1 equals Σ_C J(C) of the observed members exactly. Clusters
// with zero weight contribute 0.
func (ws *WStats) EstimateJ() float64 {
	m := ws.m
	var total float64
	for c := 0; c < ws.k; c++ {
		if ws.w[c] <= 0 {
			continue
		}
		inv := 1 / ws.w[c]
		row := ws.sum[c*m : (c+1)*m]
		var ss float64
		for _, v := range row {
			ss += v * v
		}
		total += ws.psi[c]*inv + ws.phi[c] - ss*inv
	}
	return total
}

// Sizes fills dst (k) with the rounded effective weights — the cluster
// cardinalities a frozen snapshot reports. With no forgetting these are the
// exact member counts.
func (ws *WStats) Sizes(dst []int) {
	for c, w := range ws.w {
		dst[c] = int(math.Round(w))
	}
}
