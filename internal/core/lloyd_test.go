package core

import (
	"context"
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

func TestLloydRecoversSeparatedClusters(t *testing.T) {
	r := rng.New(3000)
	ds := separableDataset(r, 3, 25, 2)
	rep, err := (&UCPCLloyd{}).Cluster(context.Background(), ds, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("no convergence")
	}
	for g := 0; g < 3; g++ {
		seen := map[int]bool{}
		for i, o := range ds {
			if o.Label == g {
				seen[rep.Partition.Assign[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("group %d split across %v", g, seen)
		}
	}
}

func TestLloydParallelMatchesSequential(t *testing.T) {
	r := rng.New(3100)
	ds := separableDataset(r, 4, 20, 3)
	seq, err := (&UCPCLloyd{Workers: 1}).Cluster(context.Background(), ds, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&UCPCLloyd{Workers: 4}).Cluster(context.Background(), ds, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Partition.Assign {
		if seq.Partition.Assign[i] != par.Partition.Assign[i] {
			t.Fatalf("object %d: sequential %d vs parallel %d",
				i, seq.Partition.Assign[i], par.Partition.Assign[i])
		}
	}
	if seq.Iterations != par.Iterations {
		t.Errorf("iterations differ: %d vs %d", seq.Iterations, par.Iterations)
	}
}

// The batch variant and Algorithm 1 optimize the same objective; on
// well-separated data they must find partitions of identical cost.
func TestLloydMatchesRelocationOnSeparableData(t *testing.T) {
	r := rng.New(3200)
	ds := separableDataset(r, 3, 20, 2)
	batch, err := (&UCPCLloyd{}).Cluster(context.Background(), ds, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	reloc, err := (&UCPC{}).Cluster(context.Background(), ds, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	diff := batch.Objective - reloc.Objective
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6*(1+reloc.Objective) {
		t.Errorf("objectives differ: batch %v vs relocation %v", batch.Objective, reloc.Objective)
	}
}

func TestLloydKeepsKClusters(t *testing.T) {
	r := rng.New(3300)
	ds := uncertain.Dataset(randomCluster(r, 30, 2))
	for _, k := range []int{1, 3, 7} {
		rep, err := (&UCPCLloyd{}).Cluster(context.Background(), ds, k, r)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !rep.Partition.NonEmpty() {
			t.Errorf("k=%d: empty cluster", k)
		}
	}
}

// Regression test for the empty-cluster reseed path: a dataset of (near)
// identical objects with large k makes the batch assignment collapse every
// object into one cluster each round, so refresh must reseed many empty
// clusters per call. The run must stay finite (no division by an empty
// cluster's zero count) and produce a valid partition for every seed.
func TestLloydManyEmptyClustersStayFinite(t *testing.T) {
	coincident := make(uncertain.Dataset, 12)
	for i := range coincident {
		coincident[i] = uncertain.NewObject(i, []dist.Distribution{
			dist.NewUniformAround(1, 0.01),
			dist.NewUniformAround(-2, 0.01),
		})
	}
	for seed := uint64(1); seed <= 10; seed++ {
		rep, err := (&UCPCLloyd{MaxIter: 6}).Cluster(context.Background(), coincident, 5, rng.New(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.IsNaN(rep.Objective) || math.IsInf(rep.Objective, 0) {
			t.Fatalf("seed %d: objective %v", seed, rep.Objective)
		}
		if err := rep.Partition.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLloydValidation(t *testing.T) {
	r := rng.New(3400)
	ds := uncertain.Dataset(randomCluster(r, 5, 2))
	if _, err := (&UCPCLloyd{}).Cluster(context.Background(), ds, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := (&UCPCLloyd{}).Cluster(context.Background(), ds, 9, r); err == nil {
		t.Error("k>n accepted")
	}
}

func TestChooseKFindsTrueK(t *testing.T) {
	r := rng.New(3500)
	ds := separableDataset(r, 4, 20, 2)
	sweep, err := ChooseK(ds, 2, 8, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Ks) != 7 {
		t.Fatalf("%d candidates", len(sweep.Ks))
	}
	if sweep.Suggested != 4 {
		t.Errorf("suggested k = %d, want 4 (objectives: %v)", sweep.Suggested, sweep.Objectives)
	}
}

func TestChooseKObjectiveDecreases(t *testing.T) {
	r := rng.New(3600)
	ds := uncertain.Dataset(randomCluster(r, 40, 2))
	sweep, err := ChooseK(ds, 1, 6, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sweep.Objectives); i++ {
		// With enough restarts the best objective is near-monotone in k;
		// allow small slack for local-optimum noise.
		if sweep.Objectives[i] > sweep.Objectives[i-1]*1.05 {
			t.Errorf("objective rose sharply at k=%d: %v -> %v",
				sweep.Ks[i], sweep.Objectives[i-1], sweep.Objectives[i])
		}
	}
}

func TestChooseKValidation(t *testing.T) {
	r := rng.New(3700)
	ds := uncertain.Dataset(randomCluster(r, 10, 2))
	if _, err := ChooseK(ds, 0, 3, 1, 1); err == nil {
		t.Error("kMin=0 accepted")
	}
	if _, err := ChooseK(ds, 3, 2, 1, 1); err == nil {
		t.Error("kMax<kMin accepted")
	}
	if _, err := ChooseK(ds, 1, 11, 1, 1); err == nil {
		t.Error("kMax>n accepted")
	}
}

var _ clustering.Algorithm = (*UCPCLloyd)(nil)
