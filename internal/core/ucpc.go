package core

import (
	"context"
	"time"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// InitStrategy selects how UCPC builds its initial partition.
type InitStrategy int

const (
	// InitRandom uses a uniform random partition with non-empty clusters
	// (the paper's default suggestion in Algorithm 1, Line 2).
	InitRandom InitStrategy = iota
	// InitKMeansPP seeds k centers with D²-weighting on ÊD and assigns
	// each object to its nearest seed.
	InitKMeansPP
)

// ctxCheckStride is how many inner-loop objects a sequential sweep handles
// between context checks: frequent enough that cancellation lands mid-pass
// on large datasets, sparse enough that the check (an atomic load and a
// branch) is invisible next to the O(k·m) work per object.
const ctxCheckStride = 4096

// UCPC is the U-Centroid-based Partitional Clustering algorithm
// (paper Algorithm 1): a local-search heuristic that relocates one object
// at a time to the cluster yielding the largest decrease of
// Σ_C J(C), using the O(m) closed forms of Theorem 3 / Corollary 1.
type UCPC struct {
	// MaxIter caps the number of full passes over the dataset
	// (0 means the default of 100). The paper's algorithm iterates until
	// no object is relocated; the cap is a safety net only.
	MaxIter int
	// Init selects the initial-partition strategy (default InitRandom).
	Init InitStrategy
	// MinImprove is the minimum relative objective decrease for a
	// relocation to be applied; guards the convergence proof
	// (Proposition 4) against floating-point jitter. 0 means 1e-12.
	MinImprove float64
	// Workers parallelizes the order-independent phases (the k-means++
	// initial assignment); <= 0 means GOMAXPROCS. The relocation sweep
	// itself is sequential by definition (each move updates the statistics
	// the next decision reads), so the partition produced for a given seed
	// is identical for every Workers value.
	Workers int
	// Pruning toggles the exact bound-based pruning of the k-means++
	// initial assignment (Assigner) and of the relocation candidate scans
	// (RelocEngine). Default on; the partition is identical either way.
	Pruning clustering.PruneMode
	// Progress, when non-nil, observes every pass: iteration index, the
	// objective Σ_C J(C), and the number of relocations applied. The
	// monotone-convergence tests (Proposition 4) hang off this callback.
	Progress clustering.ProgressFunc
}

// Name implements clustering.Algorithm.
func (u *UCPC) Name() string { return "UCPC" }

// Cluster partitions ds into k clusters (Algorithm 1).
func (u *UCPC) Cluster(ctx context.Context, ds uncertain.Dataset, k int, r *rng.RNG) (*clustering.Report, error) {
	return u.cluster(ctx, ds, k, nil, r)
}

// ClusterFrom implements clustering.WarmStarter: it runs Algorithm 1 from
// the given initial assignment instead of the Init strategy. Clusters left
// empty by init are repaired from r before the first pass.
func (u *UCPC) ClusterFrom(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	if err := clustering.ValidateInit("ucpc", init, len(ds), k); err != nil {
		return nil, err
	}
	return u.cluster(ctx, ds, k, init, r)
}

func (u *UCPC) cluster(ctx context.Context, ds uncertain.Dataset, k int, init []int, r *rng.RNG) (*clustering.Report, error) {
	ctx = clustering.Ctx(ctx)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n, m := len(ds), ds.Dims()
	if err := clustering.ValidateK("ucpc", k, n); err != nil {
		return nil, err
	}
	maxIter := u.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	minImprove := u.MinImprove
	if minImprove == 0 {
		minImprove = 1e-12
	}

	start := time.Now()

	// Pack the dataset's moments into a structure-of-arrays store once; the
	// relocation passes below only touch these flat slices.
	mom := uncertain.MomentsOf(ds)

	// Line 1-3: initial partition and per-cluster statistics. The
	// k-means++ assignment runs through the pruning engine: ÊD(o, s_c) =
	// ‖µ(o) − µ(s_c)‖² + σ²(o) + σ²(s_c) is a Euclidean distance plus a
	// per-seed additive term (the σ²(o) part is constant across seeds), so
	// the engine's bounding-box first pass skips hopeless seeds exactly.
	var assign []int
	var initPruned, initScanned int64
	switch {
	case init != nil:
		assign = clustering.RepairEmpty(append([]int(nil), init...), k, r)
	case u.Init == InitKMeansPP:
		seeds := clustering.KMeansPPCenters(ds, k, r)
		assign = make([]int, n)
		for i := range assign {
			assign[i] = -1
		}
		eng := NewAssigner(mom, k, u.Pruning.Enabled())
		centers := make([]float64, k*m)
		adds := make([]float64, k)
		for c, s := range seeds {
			copy(centers[c*m:(c+1)*m], mom.Mu(s))
			adds[c] = mom.TotalVar(s)
		}
		eng.SetCenters(centers, adds)
		eng.Assign(assign, u.Workers)
		initPruned, initScanned = eng.Counters()
		assign = clustering.RepairEmpty(assign, k, r)
	default:
		assign = clustering.RandomPartition(n, k, r)
	}

	stats := make([]*Stats, k)
	for c := range stats {
		stats[c] = NewStats(m)
	}
	AccumulateStats(mom, assign, stats)

	// Lines 4-16: relocation passes until fixed point, run by the
	// incremental-statistics engine (reloc.go): per-cluster scalar
	// sufficient statistics with version counters and a cached µ(o)·S dot
	// table make a candidate evaluation O(1) whenever the cluster is
	// unchanged since the object's last scan, and O(m) only on version
	// mismatch; the objective Σ_C J(C) is maintained by applied deltas.
	eng := NewRelocEngine(RelocUCPC, mom, stats, u.Pruning.Enabled())
	iterations := 0
	converged := false
	for iterations < maxIter {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		moves, err := eng.Pass(ctx, assign, minImprove)
		if err != nil {
			return nil, err
		}
		u.Progress.Emit(u.Name(), iterations, eng.Objective(), moves)
		if moves == 0 {
			converged = true
			break
		}
	}

	pruned, scanned := eng.Counters()
	return &clustering.Report{
		Partition:         clustering.Partition{K: k, Assign: assign},
		Objective:         eng.Objective(),
		Iterations:        iterations,
		Converged:         converged,
		Online:            time.Since(start),
		PrunedCandidates:  pruned + initPruned,
		ScannedCandidates: scanned + initScanned,
	}, nil
}

// Objective returns Σ_C J(C) for an arbitrary assignment, recomputed from
// scratch. Exposed for tests and for external evaluation of partitions.
func Objective(ds uncertain.Dataset, assign []int, k int) float64 {
	stats := make([]*Stats, k)
	for c := range stats {
		stats[c] = NewStats(ds.Dims())
	}
	for i, o := range ds {
		if assign[i] >= 0 {
			stats[assign[i]].Add(o)
		}
	}
	var v float64
	for _, s := range stats {
		v += s.J()
	}
	return v
}
