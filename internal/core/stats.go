// Package core implements the paper's primary contribution: the U-centroid
// notion of uncertain cluster centroid (Theorem 1), its moment closed forms
// (Lemma 5, Theorem 2), the U-centroid-based cluster compactness criterion
// J (Theorem 3) with O(m) incremental maintenance (Corollary 1), and the
// UCPC local-search clustering algorithm (Algorithm 1).
package core

import (
	"ucpc/internal/uncertain"
)

// Stats maintains, for one cluster C, the per-dimension running sums behind
// the closed-form objective of Theorem 3:
//
//	Ψ^{(j)} = Σ_{o∈C} (σ²)_j(o)     (sum of variances)
//	Φ^{(j)} = Σ_{o∈C} (µ₂)_j(o)     (sum of second moments)
//	S^{(j)} = Σ_{o∈C} µ_j(o)        (sum of means; Υ^{(j)} = (S^{(j)})²)
//
// so that J(C), J(C ∪ {o}) and J(C \ {o}) are all O(m) (Corollary 1).
// We store the signed sum S rather than the paper's √Υ: the two coincide
// for non-negative mean sums, and S remains correct when sums are negative.
type Stats struct {
	m    int
	size int
	psi  []float64
	phi  []float64
	sum  []float64
}

// NewStats returns empty statistics for m-dimensional clusters.
func NewStats(m int) *Stats {
	return &Stats{
		m:   m,
		psi: make([]float64, m),
		phi: make([]float64, m),
		sum: make([]float64, m),
	}
}

// NewStatsOf returns the statistics of the given cluster members.
func NewStatsOf(members []*uncertain.Object) *Stats {
	if len(members) == 0 {
		panic("core: NewStatsOf needs at least one object")
	}
	s := NewStats(members[0].Dims())
	for _, o := range members {
		s.Add(o)
	}
	return s
}

// Size returns |C|.
func (s *Stats) Size() int { return s.size }

// Dims returns the dimensionality m.
func (s *Stats) Dims() int { return s.m }

// Add inserts object o into the cluster (Corollary 1, C⁺ update) in O(m).
func (s *Stats) Add(o *uncertain.Object) {
	s.AddRow(o.Mean(), o.SecondMoment(), o.VarVector())
}

// AddRow is Add reading the object's moment rows directly — the form the
// relocation loops use against a Moments store, so the update streams
// through four flat slices with no pointer chasing.
func (s *Stats) AddRow(mu, m2, sig []float64) {
	// Local re-slices let the compiler keep the slice headers in registers
	// and drop the per-element bounds checks (it cannot prove the element
	// stores don't alias the headers through the receiver).
	psi, phi, sum := s.psi[:s.m], s.phi[:s.m], s.sum[:s.m]
	mu, m2, sig = mu[:s.m], m2[:s.m], sig[:s.m]
	for j := range sum {
		psi[j] += sig[j]
		phi[j] += m2[j]
		sum[j] += mu[j]
	}
	s.size++
}

// Remove deletes object o from the cluster (Corollary 1, C⁻ update) in O(m).
func (s *Stats) Remove(o *uncertain.Object) {
	s.RemoveRow(o.Mean(), o.SecondMoment(), o.VarVector())
}

// RemoveRow is Remove reading the object's moment rows directly.
func (s *Stats) RemoveRow(mu, m2, sig []float64) {
	if s.size == 0 {
		panic("core: Remove from empty cluster")
	}
	psi, phi, sum := s.psi[:s.m], s.phi[:s.m], s.sum[:s.m]
	mu, m2, sig = mu[:s.m], m2[:s.m], sig[:s.m]
	for j := range sum {
		psi[j] -= sig[j]
		phi[j] -= m2[j]
		sum[j] -= mu[j]
	}
	s.size--
	if s.size == 0 {
		// Snap accumulated floating-point residue to exact zero so an
		// emptied cluster is bit-identical to a fresh one.
		for j := 0; j < s.m; j++ {
			s.psi[j], s.phi[j], s.sum[j] = 0, 0, 0
		}
	}
}

// AccumulateStats folds every row of mom into the statistics of its
// assigned cluster (noise rows, assign[i] < 0, are skipped) — the batch
// entry point shared by the relocation-engine setup, warm starts, and the
// streaming engine's exact-rebuild checks. Equivalent to calling AddRow per
// object in row order, so the result is bit-identical to the incremental
// path.
func AccumulateStats(mom *uncertain.Moments, assign []int, stats []*Stats) {
	for i := 0; i < mom.Len(); i++ {
		c := assign[i]
		if c < 0 {
			continue
		}
		stats[c].AddRow(mom.Mu(i), mom.Mu2(i), mom.Sigma2(i))
	}
}

// J returns the U-centroid compactness objective of Theorem 3:
//
//	J(C) = Σ_j [ Ψ^{(j)}/|C| + Φ^{(j)} − Υ^{(j)}/|C| ]
//
// J of an empty cluster is 0.
func (s *Stats) J() float64 {
	if s.size == 0 {
		return 0
	}
	inv := 1 / float64(s.size)
	var j float64
	for d := 0; d < s.m; d++ {
		j += s.psi[d]*inv + s.phi[d] - s.sum[d]*s.sum[d]*inv
	}
	return j
}

// JUK returns the UK-means objective J_UK(C) of Lemma 1:
//
//	J_UK(C) = Σ_j [ Φ^{(j)} − Υ^{(j)}/|C| ]
func (s *Stats) JUK() float64 {
	if s.size == 0 {
		return 0
	}
	inv := 1 / float64(s.size)
	var j float64
	for d := 0; d < s.m; d++ {
		j += s.phi[d] - s.sum[d]*s.sum[d]*inv
	}
	return j
}

// JMM returns the MMVar objective J_MM(C) = σ²(C_MM), which equals
// J_UK(C)/|C| by Proposition 2.
func (s *Stats) JMM() float64 {
	if s.size == 0 {
		return 0
	}
	return s.JUK() / float64(s.size)
}

// SumVariance returns Σ_{o∈C} σ²(o) = Σ_j Ψ^{(j)}.
func (s *Stats) SumVariance() float64 {
	var v float64
	for d := 0; d < s.m; d++ {
		v += s.psi[d]
	}
	return v
}

// JIfAdd returns J(C ∪ {o}) in O(m) without mutating the statistics
// (Corollary 1, eq. 15).
func (s *Stats) JIfAdd(o *uncertain.Object) float64 {
	return s.JIfAddRow(o.Mean(), o.SecondMoment(), o.VarVector())
}

// JIfAddRow is JIfAdd reading the object's moment rows directly.
func (s *Stats) JIfAddRow(mu, m2, sig []float64) float64 {
	inv := 1 / float64(s.size+1)
	var j float64
	for d := 0; d < s.m; d++ {
		psi := s.psi[d] + sig[d]
		phi := s.phi[d] + m2[d]
		sum := s.sum[d] + mu[d]
		j += psi*inv + phi - sum*sum*inv
	}
	return j
}

// JIfRemove returns J(C \ {o}) in O(m) without mutating the statistics
// (Corollary 1, eq. 16). Removing the last member yields 0.
func (s *Stats) JIfRemove(o *uncertain.Object) float64 {
	return s.JIfRemoveRow(o.Mean(), o.SecondMoment(), o.VarVector())
}

// JIfRemoveRow is JIfRemove reading the object's moment rows directly.
func (s *Stats) JIfRemoveRow(mu, m2, sig []float64) float64 {
	if s.size == 0 {
		panic("core: JIfRemove on empty cluster")
	}
	if s.size == 1 {
		return 0
	}
	inv := 1 / float64(s.size-1)
	var j float64
	for d := 0; d < s.m; d++ {
		psi := s.psi[d] - sig[d]
		phi := s.phi[d] - m2[d]
		sum := s.sum[d] - mu[d]
		j += psi*inv + phi - sum*sum*inv
	}
	return j
}

// JUKIfAdd returns J_UK(C ∪ {o}) in O(m) without mutating the statistics.
func (s *Stats) JUKIfAdd(o *uncertain.Object) float64 {
	return s.JUKIfAddRow(o.Mean(), o.SecondMoment())
}

// JUKIfAddRow is JUKIfAdd reading the object's moment rows directly.
func (s *Stats) JUKIfAddRow(mu, m2 []float64) float64 {
	inv := 1 / float64(s.size+1)
	var j float64
	for d := 0; d < s.m; d++ {
		phi := s.phi[d] + m2[d]
		sum := s.sum[d] + mu[d]
		j += phi - sum*sum*inv
	}
	return j
}

// JUKIfRemove returns J_UK(C \ {o}) in O(m) without mutating the
// statistics. Removing the last member yields 0.
func (s *Stats) JUKIfRemove(o *uncertain.Object) float64 {
	return s.JUKIfRemoveRow(o.Mean(), o.SecondMoment())
}

// JUKIfRemoveRow is JUKIfRemove reading the object's moment rows directly.
func (s *Stats) JUKIfRemoveRow(mu, m2 []float64) float64 {
	if s.size == 0 {
		panic("core: JUKIfRemove on empty cluster")
	}
	if s.size == 1 {
		return 0
	}
	inv := 1 / float64(s.size-1)
	var j float64
	for d := 0; d < s.m; d++ {
		phi := s.phi[d] - m2[d]
		sum := s.sum[d] - mu[d]
		j += phi - sum*sum*inv
	}
	return j
}

// JMMIfAdd returns J_MM(C ∪ {o}) = J_UK(C ∪ {o})/(|C|+1) in O(m).
func (s *Stats) JMMIfAdd(o *uncertain.Object) float64 {
	return s.JMMIfAddRow(o.Mean(), o.SecondMoment())
}

// JMMIfAddRow is JMMIfAdd reading the object's moment rows directly.
func (s *Stats) JMMIfAddRow(mu, m2 []float64) float64 {
	return s.JUKIfAddRow(mu, m2) / float64(s.size+1)
}

// JMMIfRemove returns J_MM(C \ {o}) in O(m).
func (s *Stats) JMMIfRemove(o *uncertain.Object) float64 {
	return s.JMMIfRemoveRow(o.Mean(), o.SecondMoment())
}

// JMMIfRemoveRow is JMMIfRemove reading the object's moment rows directly.
func (s *Stats) JMMIfRemoveRow(mu, m2 []float64) float64 {
	if s.size <= 1 {
		return 0
	}
	return s.JUKIfRemoveRow(mu, m2) / float64(s.size-1)
}

// Clone returns a deep copy of the statistics.
func (s *Stats) Clone() *Stats {
	c := NewStats(s.m)
	c.size = s.size
	copy(c.psi, s.psi)
	copy(c.phi, s.phi)
	copy(c.sum, s.sum)
	return c
}

// MeanSum returns the per-dimension sum of member means S^{(j)} (shared
// slice; do not modify). Exposed for the U-centroid moment computations.
func (s *Stats) MeanSum() []float64 { return s.sum }
