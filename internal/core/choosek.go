package core

import (
	"context"
	"fmt"

	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// KSweep is the outcome of a cluster-count sweep: the best (lowest)
// objective found for every candidate k and the elbow suggestion.
type KSweep struct {
	Ks         []int
	Objectives []float64
	// Suggested is the k at the sweep's elbow: the candidate maximizing
	// the drop-off curvature (second difference of the objective,
	// normalized by the objective's scale).
	Suggested int
}

// ChooseK sweeps k over [kMin, kMax], running UCPC restarts times per
// candidate and keeping the best objective, then suggests the elbow of the
// objective curve. The UCPC objective Σ_C J(C) decreases monotonically in k
// (more clusters always fit at least as well), so the interesting signal is
// where the marginal gain collapses — the classic elbow heuristic applied
// to the paper's criterion.
func ChooseK(ds uncertain.Dataset, kMin, kMax, restarts int, seed uint64) (*KSweep, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if kMin < 1 || kMax < kMin || kMax > len(ds) {
		return nil, fmt.Errorf("core: invalid k range [%d,%d] for n=%d", kMin, kMax, len(ds))
	}
	if restarts < 1 {
		restarts = 1
	}
	sweep := &KSweep{}
	for k := kMin; k <= kMax; k++ {
		best := 0.0
		for rep := 0; rep < restarts; rep++ {
			r := rng.New(seed).Split(uint64(k)<<16 | uint64(rep))
			// D²-weighted seeding: random partitions routinely leave two
			// far-apart groups merged (no single-object relocation can
			// cross the gap profitably), which would corrupt the sweep.
			report, err := (&UCPC{Init: InitKMeansPP}).Cluster(context.Background(), ds, k, r)
			if err != nil {
				return nil, err
			}
			if rep == 0 || report.Objective < best {
				best = report.Objective
			}
		}
		sweep.Ks = append(sweep.Ks, k)
		sweep.Objectives = append(sweep.Objectives, best)
	}

	sweep.Suggested = sweep.Ks[0]
	if len(sweep.Ks) >= 3 {
		bestCurv := 0.0
		for i := 1; i < len(sweep.Ks)-1; i++ {
			prev, cur, next := sweep.Objectives[i-1], sweep.Objectives[i], sweep.Objectives[i+1]
			curv := (prev - cur) - (cur - next) // second difference
			scale := prev + 1e-12
			if c := curv / scale; c > bestCurv {
				bestCurv = c
				sweep.Suggested = sweep.Ks[i]
			}
		}
	}
	return sweep, nil
}
