package core

import (
	"math"
	"testing"

	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// randomCluster builds a cluster of size n of m-dimensional objects with
// mixed marginal families.
func randomCluster(r *rng.RNG, n, m int) []*uncertain.Object {
	objs := make([]*uncertain.Object, n)
	for i := range objs {
		ms := make([]dist.Distribution, m)
		for j := range ms {
			center := r.Uniform(-5, 5)
			switch r.Intn(3) {
			case 0:
				ms[j] = dist.NewUniformAround(center, 0.1+2*r.Float64())
			case 1:
				ms[j] = dist.NewTruncNormalCentral(center, 0.1+r.Float64(), 0.95)
			default:
				ms[j] = dist.NewTruncExponentialMass(center, 0.5+2*r.Float64(), 0.95)
			}
		}
		objs[i] = uncertain.NewObject(i, ms)
	}
	return objs
}

// bruteJUK computes J_UK(C) = Σ_o ED(o, c_UK) directly from eq. 7/9.
func bruteJUK(objs []*uncertain.Object) float64 {
	means := make([]vec.Vector, len(objs))
	for i, o := range objs {
		means[i] = o.Mean()
	}
	cUK := vec.Mean(means)
	var j float64
	for _, o := range objs {
		j += uncertain.ED(o, cUK)
	}
	return j
}

// Lemma 1: J_UK(C) = Σ_j [ Σ(µ₂)_j − (Σµ_j)²/|C| ].
func TestLemma1(t *testing.T) {
	r := rng.New(100)
	for trial := 0; trial < 30; trial++ {
		objs := randomCluster(r, 2+r.Intn(10), 1+r.Intn(4))
		s := NewStatsOf(objs)
		direct := bruteJUK(objs)
		closed := s.JUK()
		if math.Abs(direct-closed) > 1e-9*(1+math.Abs(direct)) {
			t.Fatalf("trial %d: J_UK direct %v vs Lemma 1 closed form %v", trial, direct, closed)
		}
	}
}

// Proposition 1: equal J_UK does not force equal cluster variance.
// We construct the counterexample from the proof sketch: two clusters with
// equal sizes, equal Σµ₂ and equal Σµ per dimension, but different Σµ²,
// hence equal J_UK and different Σσ².
func TestProp1Counterexample(t *testing.T) {
	// Cluster C: two 1-D objects with means ±1, each with variance v s.t.
	// µ₂ = v + 1. Cluster C′: two objects with means ±2, µ₂ matched.
	// Σµ = 0 for both; match Σµ₂: C has µ₂ = {2, 2} (v=1 each);
	// C′ has µ₂ = {4.5, -0.5}? Variances must be non-negative, so instead:
	// C′ means {+2, −2}, variances {0.0, 0.0} → µ₂ = {4, 4}, Σµ₂ = 8.
	// C  means {+1, −1}, variances {3.0, 3.0} → µ₂ = {4, 4}, Σµ₂ = 8.
	mk := func(mu, sigma2 float64) *uncertain.Object {
		if sigma2 == 0 {
			return uncertain.FromPoint(0, vec.Vector{mu})
		}
		width := math.Sqrt(12 * sigma2)
		return uncertain.NewObject(0, []dist.Distribution{dist.NewUniformAround(mu, width)})
	}
	c1 := []*uncertain.Object{mk(1, 3), mk(-1, 3)}
	c2 := []*uncertain.Object{mk(2, 0), mk(-2, 0)}
	s1, s2 := NewStatsOf(c1), NewStatsOf(c2)
	if math.Abs(s1.JUK()-s2.JUK()) > 1e-9 {
		t.Fatalf("construction broken: J_UK %v vs %v should be equal", s1.JUK(), s2.JUK())
	}
	if math.Abs(s1.SumVariance()-s2.SumVariance()) < 1 {
		t.Fatalf("construction broken: Σσ² %v vs %v should differ", s1.SumVariance(), s2.SumVariance())
	}
	// And J (UCPC) does distinguish them: same J_UK, different Σσ²/|C|.
	if math.Abs(s1.J()-s2.J()) < 1 {
		t.Errorf("J fails to separate the Prop-1 clusters: %v vs %v", s1.J(), s2.J())
	}
}

// Proposition 2: J_MM(C) = |C|⁻¹ J_UK(C).
func TestProp2(t *testing.T) {
	r := rng.New(200)
	for trial := 0; trial < 30; trial++ {
		objs := randomCluster(r, 2+r.Intn(10), 1+r.Intn(4))
		s := NewStatsOf(objs)
		want := s.JUK() / float64(len(objs))
		if got := s.JMM(); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("trial %d: J_MM %v vs J_UK/|C| %v", trial, got, want)
		}
	}
}

// Proposition 2, independent route: σ²(C_MM) computed from the mixture
// moments of Lemma 2 equals J_UK/|C|.
func TestProp2ViaMixtureMoments(t *testing.T) {
	r := rng.New(201)
	objs := randomCluster(r, 7, 3)
	n := float64(len(objs))
	m := objs[0].Dims()
	// Lemma 2: µ(C_MM) = avg µ(o), µ₂(C_MM) = avg µ₂(o).
	var sigma2 float64
	for j := 0; j < m; j++ {
		var sMu, sM2 float64
		for _, o := range objs {
			sMu += o.Mean()[j]
			sM2 += o.SecondMoment()[j]
		}
		mixMu := sMu / n
		mixM2 := sM2 / n
		sigma2 += mixM2 - mixMu*mixMu
	}
	s := NewStatsOf(objs)
	if math.Abs(sigma2-s.JMM()) > 1e-9*(1+sigma2) {
		t.Fatalf("σ²(C_MM) = %v vs J_MM closed form %v", sigma2, s.JMM())
	}
}

// Proposition 3: Ĵ(C) = Σ_o ÊD(o, C_MM) = 2|C| J_MM(C) = 2 J_UK(C).
func TestProp3(t *testing.T) {
	r := rng.New(300)
	for trial := 0; trial < 20; trial++ {
		objs := randomCluster(r, 2+r.Intn(8), 1+r.Intn(3))
		n := float64(len(objs))
		m := objs[0].Dims()
		// Build mixture moments per Lemma 2.
		mixMu := vec.New(m)
		mixM2 := vec.New(m)
		for _, o := range objs {
			vec.AddInPlace(mixMu, o.Mean())
			vec.AddInPlace(mixM2, o.SecondMoment())
		}
		vec.ScaleInPlace(mixMu, 1/n)
		vec.ScaleInPlace(mixM2, 1/n)
		// Ĵ via Lemma 3 with the mixture as second argument.
		var jHat float64
		for _, o := range objs {
			for j := 0; j < m; j++ {
				jHat += o.SecondMoment()[j] - 2*o.Mean()[j]*mixMu[j] + mixM2[j]
			}
		}
		s := NewStatsOf(objs)
		if math.Abs(jHat-2*s.JUK()) > 1e-9*(1+math.Abs(jHat)) {
			t.Fatalf("trial %d: Ĵ %v vs 2 J_UK %v", trial, jHat, 2*s.JUK())
		}
		if math.Abs(jHat-2*n*s.JMM()) > 1e-9*(1+math.Abs(jHat)) {
			t.Fatalf("trial %d: Ĵ %v vs 2|C| J_MM %v", trial, jHat, 2*n*s.JMM())
		}
	}
}

// Theorem 1: the U-centroid region is the member-average box, and sampled
// realizations always fall inside it.
func TestUCentroidRegionTheorem1(t *testing.T) {
	r := rng.New(400)
	objs := randomCluster(r, 5, 3)
	u := NewUCentroid(objs)
	reg := u.Region()
	n := float64(len(objs))
	for j := 0; j < 3; j++ {
		var lo, hi float64
		for _, o := range objs {
			lo += o.Region().Lo[j]
			hi += o.Region().Hi[j]
		}
		if math.Abs(reg.Lo[j]-lo/n) > 1e-12 || math.Abs(reg.Hi[j]-hi/n) > 1e-12 {
			t.Fatalf("dim %d: region [%v,%v], want [%v,%v]", j, reg.Lo[j], reg.Hi[j], lo/n, hi/n)
		}
	}
	for i := 0; i < 2000; i++ {
		x := u.SampleRealization(r)
		for j := range x {
			if x[j] < reg.Lo[j]-1e-9 || x[j] > reg.Hi[j]+1e-9 {
				t.Fatalf("realization %v escapes region on dim %d", x, j)
			}
		}
	}
}

// Theorem 2: σ²(C̄) = |C|⁻² Σ_i σ²(o_i), cross-checked against Monte Carlo
// realizations of X_C̄.
func TestUCentroidVarianceTheorem2(t *testing.T) {
	r := rng.New(500)
	objs := randomCluster(r, 6, 2)
	u := NewUCentroid(objs)
	var sumVar float64
	for _, o := range objs {
		sumVar += o.TotalVar()
	}
	want := sumVar / float64(len(objs)*len(objs))
	if got := u.TotalVar(); math.Abs(got-want) > 1e-12*(1+want) {
		t.Fatalf("σ²(C̄) closed form %v vs Theorem 2 %v", got, want)
	}
	// Monte Carlo check.
	const n = 200000
	m := u.Dims()
	sum := vec.New(m)
	sq := vec.New(m)
	for i := 0; i < n; i++ {
		x := u.SampleRealization(r)
		for j := range x {
			sum[j] += x[j]
			sq[j] += x[j] * x[j]
		}
	}
	var mcVar float64
	for j := 0; j < m; j++ {
		mean := sum[j] / n
		mcVar += sq[j]/n - mean*mean
	}
	if math.Abs(mcVar-want) > 0.05*(1+want) {
		t.Errorf("MC variance %v vs Theorem 2 %v", mcVar, want)
	}
}

// Lemma 5: µ(C̄) and µ₂(C̄) closed forms vs Monte Carlo.
func TestUCentroidMomentsLemma5(t *testing.T) {
	r := rng.New(600)
	objs := randomCluster(r, 4, 2)
	u := NewUCentroid(objs)
	// Mean: |C|⁻¹ Σ µ(o).
	want := vec.New(2)
	for _, o := range objs {
		vec.AddInPlace(want, o.Mean())
	}
	vec.ScaleInPlace(want, 1/float64(len(objs)))
	if !vec.ApproxEqual(u.Mean(), want, 1e-12) {
		t.Fatalf("µ(C̄) = %v, want %v", u.Mean(), want)
	}
	// Second moment via MC.
	const n = 300000
	sq := vec.New(2)
	for i := 0; i < n; i++ {
		x := u.SampleRealization(r)
		for j := range x {
			sq[j] += x[j] * x[j]
		}
	}
	for j := 0; j < 2; j++ {
		mc := sq[j] / n
		if math.Abs(mc-u.SecondMoment()[j]) > 0.05*(1+math.Abs(mc)) {
			t.Errorf("dim %d: MC µ₂ %v vs Lemma 5 %v", j, mc, u.SecondMoment()[j])
		}
	}
}

// Theorem 3: J(C) from the Ψ/Φ/Υ closed form equals (a) the sum of
// ÊD(o, C̄) over members computed from the U-centroid moments, (b) the
// |C|⁻¹Σσ² + J_UK decomposition, and (c) a Monte Carlo estimate of
// Σ_o ÊD(o, C̄).
func TestTheorem3(t *testing.T) {
	r := rng.New(700)
	for trial := 0; trial < 10; trial++ {
		objs := randomCluster(r, 2+r.Intn(6), 1+r.Intn(3))
		s := NewStatsOf(objs)
		u := NewUCentroid(objs)

		var viaEED float64
		for _, o := range objs {
			viaEED += u.EED(o)
		}
		closed := s.J()
		if math.Abs(viaEED-closed) > 1e-9*(1+math.Abs(closed)) {
			t.Fatalf("trial %d: Σ ÊD(o,C̄) = %v vs closed form %v", trial, viaEED, closed)
		}

		var sumVar float64
		for _, o := range objs {
			sumVar += o.TotalVar()
		}
		decomp := sumVar/float64(len(objs)) + s.JUK()
		if math.Abs(decomp-closed) > 1e-9*(1+math.Abs(closed)) {
			t.Fatalf("trial %d: decomposition %v vs closed form %v", trial, decomp, closed)
		}
	}
}

// Theorem 3 cross-check by Monte Carlo: ÊD(o, C̄) estimated by sampling
// pairs (realization of o, realization of X_C̄).
func TestTheorem3MonteCarlo(t *testing.T) {
	r := rng.New(800)
	objs := randomCluster(r, 4, 2)
	s := NewStatsOf(objs)
	u := NewUCentroid(objs)
	const n = 100000
	var mc float64
	for _, o := range objs {
		var acc float64
		for i := 0; i < n; i++ {
			acc += vec.SqDist(o.Sample(r), u.SampleRealization(r))
		}
		mc += acc / n
	}
	if closed := s.J(); math.Abs(mc-closed) > 0.05*(1+closed) {
		t.Errorf("MC Σ ÊD = %v vs Theorem 3 closed form %v", mc, closed)
	}
}

// The MarginalHistogram of the U-centroid must integrate to ~1 and
// concentrate near the mean (Theorem 1's averaging narrows the spread).
func TestUCentroidMarginalHistogram(t *testing.T) {
	r := rng.New(900)
	objs := randomCluster(r, 5, 2)
	u := NewUCentroid(objs)
	centers, density := u.MarginalHistogram(r, 0, 40, 20000)
	if len(centers) != 40 || len(density) != 40 {
		t.Fatalf("histogram sizes %d/%d", len(centers), len(density))
	}
	w := centers[1] - centers[0]
	var integral float64
	for _, d := range density {
		integral += d * w
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("marginal histogram integrates to %v", integral)
	}
}
