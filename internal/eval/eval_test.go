package eval

import (
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/dist"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

func labeledDataset(r *rng.RNG, k, per int) uncertain.Dataset {
	var ds uncertain.Dataset
	id := 0
	for g := 0; g < k; g++ {
		for i := 0; i < per; i++ {
			ms := []dist.Distribution{
				dist.NewUniformAround(8*float64(g)+r.Normal(0, 0.3), 0.5),
				dist.NewUniformAround(8*float64(g)+r.Normal(0, 0.3), 0.5),
			}
			ds = append(ds, uncertain.NewObject(id, ms).WithLabel(g))
			id++
		}
	}
	return ds
}

func perfectPartition(ds uncertain.Dataset, k int) clustering.Partition {
	assign := make([]int, len(ds))
	for i, o := range ds {
		assign[i] = o.Label
	}
	return clustering.Partition{K: k, Assign: assign}
}

func TestFMeasurePerfect(t *testing.T) {
	r := rng.New(1)
	ds := labeledDataset(r, 3, 10)
	if f := FMeasure(perfectPartition(ds, 3), ds.Labels()); math.Abs(f-1) > 1e-12 {
		t.Errorf("perfect F = %v, want 1", f)
	}
}

func TestFMeasureSingleCluster(t *testing.T) {
	r := rng.New(2)
	ds := labeledDataset(r, 2, 10)
	assign := make([]int, len(ds))
	p := clustering.Partition{K: 1, Assign: assign}
	f := FMeasure(p, ds.Labels())
	// One cluster over two balanced classes: per class P = 1/2, R = 1,
	// F_uv = 2/3; weighted sum = 2/3.
	if math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("single-cluster F = %v, want 2/3", f)
	}
}

func TestFMeasureRange(t *testing.T) {
	r := rng.New(3)
	ds := labeledDataset(r, 3, 8)
	for trial := 0; trial < 20; trial++ {
		assign := make([]int, len(ds))
		for i := range assign {
			assign[i] = r.Intn(3)
		}
		f := FMeasure(clustering.Partition{K: 3, Assign: assign}, ds.Labels())
		if f < 0 || f > 1 {
			t.Fatalf("F out of range: %v", f)
		}
	}
}

func TestFMeasureNoiseAsSingletons(t *testing.T) {
	r := rng.New(4)
	ds := labeledDataset(r, 2, 5)
	// Perfect clustering but one object marked noise.
	assign := make([]int, len(ds))
	for i, o := range ds {
		assign[i] = o.Label
	}
	assign[0] = clustering.Noise
	f := FMeasure(clustering.Partition{K: 2, Assign: assign}, ds.Labels())
	fPerfect := FMeasure(perfectPartition(ds, 2), ds.Labels())
	if f >= fPerfect {
		t.Errorf("noise demotion did not reduce F: %v vs %v", f, fPerfect)
	}
	if f <= 0 {
		t.Errorf("F = %v", f)
	}
}

func TestFMeasureMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	FMeasure(clustering.Partition{K: 1, Assign: []int{0, 0}}, []int{0})
}

func TestTheta(t *testing.T) {
	if math.Abs(Theta(0.8, 0.5)-0.3) > 1e-12 {
		t.Error("Theta arithmetic")
	}
	if math.Abs(Theta(0.2, 0.5)+0.3) > 1e-12 {
		t.Error("Theta negative")
	}
}

// Closed-form intra/inter must match the brute-force O(n²) reference.
func TestIntraInterClosedFormVsBrute(t *testing.T) {
	r := rng.New(5)
	ds := labeledDataset(r, 3, 7)
	for trial := 0; trial < 10; trial++ {
		assign := make([]int, len(ds))
		for i := range assign {
			assign[i] = r.Intn(3)
		}
		p := clustering.Partition{K: 3, Assign: assign}
		ia, ie := IntraInter(ds, p)
		ba, be := IntraInterBrute(ds, p)
		if math.Abs(ia-ba) > 1e-9*(1+ba) || math.Abs(ie-be) > 1e-9*(1+be) {
			t.Fatalf("trial %d: closed (%v,%v) vs brute (%v,%v)", trial, ia, ie, ba, be)
		}
	}
}

func TestIntraInterWithNoise(t *testing.T) {
	r := rng.New(6)
	ds := labeledDataset(r, 2, 6)
	assign := make([]int, len(ds))
	for i, o := range ds {
		assign[i] = o.Label
	}
	assign[3] = clustering.Noise
	p := clustering.Partition{K: 2, Assign: assign}
	ia, ie := IntraInter(ds, p)
	ba, be := IntraInterBrute(ds, p)
	if math.Abs(ia-ba) > 1e-9*(1+ba) || math.Abs(ie-be) > 1e-9*(1+be) {
		t.Fatalf("noise handling differs: closed (%v,%v) vs brute (%v,%v)", ia, ie, ba, be)
	}
}

// A good partition of well-separated data has Q > 0 and beats a random one.
func TestQualityOrdersPartitions(t *testing.T) {
	r := rng.New(7)
	ds := labeledDataset(r, 3, 12)
	good := Quality(ds, perfectPartition(ds, 3))
	if good <= 0 {
		t.Errorf("perfect partition Q = %v, want > 0", good)
	}
	assign := make([]int, len(ds))
	for i := range assign {
		assign[i] = r.Intn(3)
	}
	bad := Quality(ds, clustering.Partition{K: 3, Assign: assign})
	if good <= bad {
		t.Errorf("perfect Q %v not above random Q %v", good, bad)
	}
}

func TestIntraInterBounds(t *testing.T) {
	r := rng.New(8)
	ds := labeledDataset(r, 2, 10)
	intra, inter := IntraInter(ds, perfectPartition(ds, 2))
	for _, v := range []float64{intra, inter} {
		if v < 0 || v > 1 {
			t.Fatalf("normalized criterion out of [0,1]: %v", v)
		}
	}
}

func TestSingletonClustersIntraZero(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, vec.Vector{0, 0}).WithLabel(0),
		uncertain.FromPoint(1, vec.Vector{5, 5}).WithLabel(1),
	}
	intra, inter := IntraInter(ds, clustering.Partition{K: 2, Assign: []int{0, 1}})
	if intra != 0 {
		t.Errorf("singleton intra = %v", intra)
	}
	if inter <= 0 {
		t.Errorf("inter = %v", inter)
	}
}

func TestPurity(t *testing.T) {
	r := rng.New(9)
	ds := labeledDataset(r, 2, 5)
	if p := Purity(perfectPartition(ds, 2), ds.Labels()); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
}

func TestARI(t *testing.T) {
	r := rng.New(10)
	ds := labeledDataset(r, 3, 8)
	if a := AdjustedRandIndex(perfectPartition(ds, 3), ds.Labels()); math.Abs(a-1) > 1e-12 {
		t.Errorf("perfect ARI = %v", a)
	}
	// Random labelings hover around 0.
	var sum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		assign := make([]int, len(ds))
		for j := range assign {
			assign[j] = r.Intn(3)
		}
		sum += AdjustedRandIndex(clustering.Partition{K: 3, Assign: assign}, ds.Labels())
	}
	if avg := sum / trials; math.Abs(avg) > 0.1 {
		t.Errorf("random ARI average = %v, want ~0", avg)
	}
}
