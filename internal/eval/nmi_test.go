package eval

import (
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
)

func TestNMIPerfect(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	p := clustering.Partition{K: 3, Assign: []int{0, 0, 1, 1, 2, 2}}
	if nmi := NormalizedMutualInformation(p, labels); math.Abs(nmi-1) > 1e-12 {
		t.Errorf("perfect NMI = %v", nmi)
	}
	// Relabeled clusters score identically.
	q := clustering.Partition{K: 3, Assign: []int{2, 2, 0, 0, 1, 1}}
	if nmi := NormalizedMutualInformation(q, labels); math.Abs(nmi-1) > 1e-12 {
		t.Errorf("relabeled NMI = %v", nmi)
	}
}

func TestNMISingleCluster(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	p := clustering.Partition{K: 1, Assign: []int{0, 0, 0, 0}}
	if nmi := NormalizedMutualInformation(p, labels); nmi != 0 {
		t.Errorf("uninformative clustering NMI = %v, want 0", nmi)
	}
}

func TestNMIDegenerate(t *testing.T) {
	labels := []int{0, 0, 0}
	p := clustering.Partition{K: 1, Assign: []int{0, 0, 0}}
	if nmi := NormalizedMutualInformation(p, labels); nmi != 1 {
		t.Errorf("trivial agreement NMI = %v, want 1", nmi)
	}
}

func TestNMIRandomNearZero(t *testing.T) {
	r := rng.New(5)
	n := 600
	labels := make([]int, n)
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = r.Intn(3)
		assign[i] = r.Intn(3)
	}
	nmi := NormalizedMutualInformation(clustering.Partition{K: 3, Assign: assign}, labels)
	if nmi > 0.05 {
		t.Errorf("random NMI = %v, want ~0", nmi)
	}
}

func TestNMINoiseAsSingletons(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	perfect := clustering.Partition{K: 2, Assign: []int{0, 0, 1, 1}}
	withNoise := clustering.Partition{K: 2, Assign: []int{0, 0, 1, clustering.Noise}}
	a := NormalizedMutualInformation(perfect, labels)
	b := NormalizedMutualInformation(withNoise, labels)
	if b >= a {
		t.Errorf("noise demotion did not reduce NMI: %v vs %v", b, a)
	}
}

func TestNMIRange(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 20 + r.Intn(50)
		labels := make([]int, n)
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = r.Intn(4)
			assign[i] = r.Intn(5)
		}
		nmi := NormalizedMutualInformation(clustering.Partition{K: 5, Assign: assign}, labels)
		if nmi < 0 || nmi > 1 {
			t.Fatalf("NMI out of range: %v", nmi)
		}
	}
}

func TestNMIMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatch")
		}
	}()
	NormalizedMutualInformation(clustering.Partition{K: 1, Assign: []int{0}}, []int{0, 1})
}
