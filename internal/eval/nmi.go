package eval

import (
	"math"
	"sort"

	"ucpc/internal/clustering"
)

// NormalizedMutualInformation computes NMI between a partition and
// reference labels with the arithmetic-mean normalization
// NMI = 2·I(C;C̃) / (H(C)+H(C̃)), a standard secondary external criterion
// complementing the paper's F-measure. Noise objects become singleton
// clusters (as in FMeasure). Returns a value in [0, 1]; degenerate inputs
// (a single class and a single cluster) score 1.
func NormalizedMutualInformation(p clustering.Partition, labels []int) float64 {
	n := len(p.Assign)
	if n == 0 || n != len(labels) {
		panic("eval: NMI length mismatch")
	}
	assign := make([]int, n)
	next := p.K
	for i, c := range p.Assign {
		if c == clustering.Noise {
			assign[i] = next
			next++
		} else {
			assign[i] = c
		}
	}

	clusterCount := map[int]float64{}
	classCount := map[int]float64{}
	joint := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		clusterCount[assign[i]]++
		classCount[labels[i]]++
		joint[[2]int{assign[i], labels[i]}]++
	}
	fn := float64(n)

	// Deterministic float accumulation: fold in sorted-key order.
	keys := make([][2]int, 0, len(joint))
	for k := range joint {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var mi float64
	for _, key := range keys {
		pij := joint[key] / fn
		pi := clusterCount[key[0]] / fn
		pj := classCount[key[1]] / fn
		mi += pij * math.Log(pij/(pi*pj))
	}
	entropy := func(counts map[int]float64) float64 {
		return sortedSum(counts, func(c float64) float64 {
			p := c / fn
			return -p * math.Log(p)
		})
	}
	hc, hl := entropy(clusterCount), entropy(classCount)
	if hc+hl == 0 {
		return 1 // both sides are a single block: perfect trivial agreement
	}
	nmi := 2 * mi / (hc + hl)
	// Clamp floating-point spill-over.
	return math.Max(0, math.Min(1, nmi))
}
