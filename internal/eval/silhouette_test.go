package eval

import (
	"math"
	"testing"

	"ucpc/internal/clustering"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// bruteSilhouette recomputes the coefficient by explicit O(n²) pair sums.
func bruteSilhouette(ds uncertain.Dataset, p clustering.Partition) float64 {
	members := p.Members()
	var total float64
	scored := 0
	for i := range ds {
		ci := p.Assign[i]
		if ci < 0 {
			continue
		}
		if len(members[ci]) <= 1 {
			scored++
			continue
		}
		var a float64
		for _, j := range members[ci] {
			if j != i {
				a += uncertain.EED(ds[i], ds[j])
			}
		}
		a /= float64(len(members[ci]) - 1)
		b := math.Inf(1)
		for cj, ms := range members {
			if cj == ci || len(ms) == 0 {
				continue
			}
			var d float64
			for _, j := range ms {
				d += uncertain.EED(ds[i], ds[j])
			}
			d /= float64(len(ms))
			if d < b {
				b = d
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
		scored++
	}
	if scored == 0 {
		return 0
	}
	return total / float64(scored)
}

func TestSilhouetteMatchesBrute(t *testing.T) {
	r := rng.New(11)
	ds := labeledDataset(r, 3, 8)
	for trial := 0; trial < 10; trial++ {
		assign := make([]int, len(ds))
		for i := range assign {
			assign[i] = r.Intn(3)
		}
		p := clustering.Partition{K: 3, Assign: assign}
		fast := Silhouette(ds, p)
		brute := bruteSilhouette(ds, p)
		if math.Abs(fast-brute) > 1e-9*(1+math.Abs(brute)) {
			t.Fatalf("trial %d: closed form %v vs brute %v", trial, fast, brute)
		}
	}
}

func TestSilhouetteGoodVsBad(t *testing.T) {
	r := rng.New(12)
	ds := labeledDataset(r, 3, 12)
	good := Silhouette(ds, perfectPartition(ds, 3))
	if good <= 0.5 {
		t.Errorf("perfect partition silhouette = %v, want well above 0.5", good)
	}
	assign := make([]int, len(ds))
	for i := range assign {
		assign[i] = r.Intn(3)
	}
	bad := Silhouette(ds, clustering.Partition{K: 3, Assign: assign})
	if good <= bad {
		t.Errorf("good %v not above random %v", good, bad)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	r := rng.New(13)
	ds := labeledDataset(r, 2, 5)
	if s := Silhouette(ds, clustering.Partition{K: 1, Assign: make([]int, len(ds))}); s != 0 {
		t.Errorf("single-cluster silhouette = %v, want 0", s)
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	ds := uncertain.Dataset{
		uncertain.FromPoint(0, vec.Vector{0, 0}).WithLabel(0),
		uncertain.FromPoint(1, vec.Vector{10, 0}).WithLabel(1),
	}
	// Two singleton clusters: everyone scores 0 by convention.
	if s := Silhouette(ds, clustering.Partition{K: 2, Assign: []int{0, 1}}); s != 0 {
		t.Errorf("singletons silhouette = %v", s)
	}
}

func TestSilhouetteWithNoise(t *testing.T) {
	r := rng.New(14)
	ds := labeledDataset(r, 2, 6)
	assign := make([]int, len(ds))
	for i, o := range ds {
		assign[i] = o.Label
	}
	assign[0] = clustering.Noise
	p := clustering.Partition{K: 2, Assign: assign}
	fast := Silhouette(ds, p)
	brute := bruteSilhouette(ds, p)
	if math.Abs(fast-brute) > 1e-9*(1+math.Abs(brute)) {
		t.Errorf("noise handling differs: %v vs %v", fast, brute)
	}
}

func TestSilhouetteRange(t *testing.T) {
	r := rng.New(15)
	ds := labeledDataset(r, 4, 6)
	for trial := 0; trial < 20; trial++ {
		assign := make([]int, len(ds))
		for i := range assign {
			assign[i] = r.Intn(4)
		}
		s := Silhouette(ds, clustering.Partition{K: 4, Assign: assign})
		if s < -1-1e-9 || s > 1+1e-9 {
			t.Fatalf("silhouette out of range: %v", s)
		}
	}
}
