// Package eval implements the cluster validity criteria of the paper's
// assessment methodology (§5.1): the external F-measure against a reference
// classification, the internal intra/inter-cluster distances combined into
// the quality score Q = inter − intra, and the uncertainty-gain score
// Θ = F(C″) − F(C′).
package eval

import (
	"fmt"
	"math"
	"sort"

	"ucpc/internal/clustering"
	"ucpc/internal/uncertain"
	"ucpc/internal/vec"
)

// FMeasure computes the paper's external criterion
//
//	F(C, C̃) = |D|⁻¹ Σ_u |C̃_u| · max_v F_uv
//
// where F_uv is the harmonic mean of precision P_uv = |C_v ∩ C̃_u|/|C_v|
// and recall R_uv = |C_v ∩ C̃_u|/|C̃_u|. Noise objects (assignment
// clustering.Noise) are treated as singleton clusters, so density-based
// algorithms are neither rewarded nor excused for discarding objects.
// labels must hold the reference class of every object (values ≥ 0).
func FMeasure(p clustering.Partition, labels []int) float64 {
	n := len(p.Assign)
	if n == 0 || n != len(labels) {
		panic(fmt.Sprintf("eval: %d assignments vs %d labels", n, len(labels)))
	}
	// Remap noise objects to fresh singleton cluster ids.
	assign := make([]int, n)
	next := p.K
	for i, c := range p.Assign {
		if c == clustering.Noise {
			assign[i] = next
			next++
		} else {
			assign[i] = c
		}
	}
	numClusters := next

	// Class and cluster sizes, and the contingency table.
	classSize := map[int]int{}
	for _, l := range labels {
		if l < 0 {
			panic("eval: reference label < 0")
		}
		classSize[l]++
	}
	clusterSize := make([]int, numClusters)
	for _, c := range assign {
		clusterSize[c]++
	}
	joint := map[[2]int]int{} // (class, cluster) -> count
	for i, c := range assign {
		joint[[2]int{labels[i], c}]++
	}

	// Iterate classes in sorted order so the floating-point sum is
	// deterministic (map order would perturb the last bits run to run).
	classes := make([]int, 0, len(classSize))
	for class := range classSize {
		classes = append(classes, class)
	}
	sort.Ints(classes)

	var f float64
	for _, class := range classes {
		csize := classSize[class]
		bestF := 0.0
		for v := 0; v < numClusters; v++ {
			inter := joint[[2]int{class, v}]
			if inter == 0 {
				continue
			}
			precision := float64(inter) / float64(clusterSize[v])
			recall := float64(inter) / float64(csize)
			fuv := 2 * precision * recall / (precision + recall)
			if fuv > bestF {
				bestF = fuv
			}
		}
		f += float64(csize) * bestF
	}
	return f / float64(n)
}

// Theta is the paper's uncertainty-gain score: the F-measure of the
// clustering produced with the uncertainty model (Case 2) minus the
// F-measure of the clustering of the perturbed deterministic data
// (Case 1). Positive values mean modeling uncertainty helped.
func Theta(fCase2, fCase1 float64) float64 { return fCase2 - fCase1 }

// clusterSums holds the per-cluster aggregates that make the pairwise-ÊD
// intra/inter criteria computable in O(n·m + k²·m) instead of O(n²·m):
// ÊD(o,o′) = ‖µ−µ′‖² + σ² + σ′², so pair sums reduce to sums of means,
// squared norms of means, and total variances.
type clusterSums struct {
	size   int
	sumMu  vec.Vector // Σ µ(o)
	sumSq  float64    // Σ ‖µ(o)‖²
	sumVar float64    // Σ σ²(o)
}

func accumulate(ds uncertain.Dataset, p clustering.Partition) []clusterSums {
	m := ds.Dims()
	cs := make([]clusterSums, p.K)
	for c := range cs {
		cs[c].sumMu = vec.New(m)
	}
	for i, o := range ds {
		c := p.Assign[i]
		if c < 0 || c >= p.K {
			continue // noise objects do not join any cluster
		}
		cs[c].size++
		vec.AddInPlace(cs[c].sumMu, o.Mean())
		cs[c].sumSq += vec.SqNorm(o.Mean())
		cs[c].sumVar += o.TotalVar()
	}
	return cs
}

// intraSum returns Σ_{o≠o′∈C} ÊD(o,o′) over ordered pairs.
func (c clusterSums) intraSum() float64 {
	n := float64(c.size)
	return 2*n*c.sumSq - 2*vec.SqNorm(c.sumMu) + 2*(n-1)*c.sumVar
}

// interSum returns Σ_{o∈A} Σ_{o′∈B} ÊD(o,o′).
func interSum(a, b clusterSums) float64 {
	na, nb := float64(a.size), float64(b.size)
	return nb*(a.sumSq+a.sumVar) + na*(b.sumSq+b.sumVar) - 2*vec.Dot(a.sumMu, b.sumMu)
}

// IntraInter computes the paper's internal criteria:
//
//	intra(C) = |C|⁻¹ Σ_C [|C|(|C|−1)]⁻¹ Σ_{o≠o′∈C} ÊD(o,o′)
//	inter(C) = [|C|(|C|−1)]⁻¹ Σ_{C≠C′} [|C||C′|]⁻¹ Σ_{o∈C,o′∈C′} ÊD(o,o′)
//
// both normalized by the dataset's maximum pairwise ÊD so they lie in
// [0,1]. Clusters with fewer than two members contribute 0 to intra
// (their pair set is empty). Noise objects are ignored.
func IntraInter(ds uncertain.Dataset, p clustering.Partition) (intra, inter float64) {
	cs := accumulate(ds, p)
	norm := uncertain.MaxPairwiseEED(ds, 2000)

	nonEmpty := 0
	for _, c := range cs {
		if c.size > 0 {
			nonEmpty++
		}
		if c.size >= 2 {
			pairs := float64(c.size) * float64(c.size-1)
			intra += c.intraSum() / pairs
		}
	}
	if nonEmpty > 0 {
		intra /= float64(nonEmpty)
	}

	pairCount := 0
	for a := 0; a < len(cs); a++ {
		if cs[a].size == 0 {
			continue
		}
		for b := 0; b < len(cs); b++ {
			if b == a || cs[b].size == 0 {
				continue
			}
			inter += interSum(cs[a], cs[b]) / (float64(cs[a].size) * float64(cs[b].size))
			pairCount++
		}
	}
	if pairCount > 0 {
		inter /= float64(pairCount)
	}
	return intra / norm, inter / norm
}

// Quality is the combined internal score Q(C) = inter(C) − intra(C),
// ranging in [−1, 1]; higher is better.
func Quality(ds uncertain.Dataset, p clustering.Partition) float64 {
	intra, inter := IntraInter(ds, p)
	return inter - intra
}

// IntraInterBrute computes the same criteria by explicit O(n²) pair sums;
// used by tests to validate the closed-form aggregation.
func IntraInterBrute(ds uncertain.Dataset, p clustering.Partition) (intra, inter float64) {
	norm := uncertain.MaxPairwiseEED(ds, 2000)
	members := p.Members()
	nonEmpty := 0
	for _, ms := range members {
		if len(ms) > 0 {
			nonEmpty++
		}
		if len(ms) < 2 {
			continue
		}
		var sum float64
		for _, i := range ms {
			for _, j := range ms {
				if i != j {
					sum += uncertain.EED(ds[i], ds[j])
				}
			}
		}
		intra += sum / (float64(len(ms)) * float64(len(ms)-1))
	}
	if nonEmpty > 0 {
		intra /= float64(nonEmpty)
	}
	pairCount := 0
	for a := range members {
		if len(members[a]) == 0 {
			continue
		}
		for b := range members {
			if a == b || len(members[b]) == 0 {
				continue
			}
			var sum float64
			for _, i := range members[a] {
				for _, j := range members[b] {
					sum += uncertain.EED(ds[i], ds[j])
				}
			}
			inter += sum / float64(len(members[a])*len(members[b]))
			pairCount++
		}
	}
	if pairCount > 0 {
		inter /= float64(pairCount)
	}
	return intra / norm, inter / norm
}

// Purity returns the fraction of objects whose cluster's majority class
// matches their own class — a secondary external criterion used in tests
// and examples.
func Purity(p clustering.Partition, labels []int) float64 {
	if len(p.Assign) == 0 {
		return 0
	}
	counts := map[int]map[int]int{}
	for i, c := range p.Assign {
		if counts[c] == nil {
			counts[c] = map[int]int{}
		}
		counts[c][labels[i]]++
	}
	correct := 0
	for _, byClass := range counts {
		best := 0
		for _, cnt := range byClass {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(p.Assign))
}

// AdjustedRandIndex computes the ARI between a partition and reference
// labels (noise objects become singletons). Secondary external criterion.
func AdjustedRandIndex(p clustering.Partition, labels []int) float64 {
	n := len(p.Assign)
	assign := make([]int, n)
	next := p.K
	for i, c := range p.Assign {
		if c == clustering.Noise {
			assign[i] = next
			next++
		} else {
			assign[i] = c
		}
	}
	joint := map[[2]int]float64{}
	rowSum := map[int]float64{}
	colSum := map[int]float64{}
	for i := 0; i < n; i++ {
		joint[[2]int{assign[i], labels[i]}]++
		rowSum[assign[i]]++
		colSum[labels[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	sumJoint := sortedSum2(joint, choose2)
	sumRow := sortedSum(rowSum, choose2)
	sumCol := sortedSum(colSum, choose2)
	total := choose2(float64(n))
	expected := sumRow * sumCol / total
	maxIdx := (sumRow + sumCol) / 2
	if math.Abs(maxIdx-expected) < 1e-15 {
		return 0
	}
	return (sumJoint - expected) / (maxIdx - expected)
}

// sortedSum folds f over the map values in sorted-key order, keeping
// floating-point results deterministic across runs.
func sortedSum(m map[int]float64, f func(float64) float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += f(m[k])
	}
	return s
}

// sortedSum2 is sortedSum for pair-keyed maps.
func sortedSum2(m map[[2]int]float64, f func(float64) float64) float64 {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var s float64
	for _, k := range keys {
		s += f(m[k])
	}
	return s
}
