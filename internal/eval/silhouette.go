package eval

import (
	"math"

	"ucpc/internal/clustering"
	"ucpc/internal/uncertain"
)

// Silhouette computes the mean silhouette coefficient of a partition under
// the squared expected distance ÊD: for each object, a(o) is the mean ÊD to
// its own cluster's other members and b(o) the smallest mean ÊD to another
// cluster, scored as (b−a)/max(a,b) ∈ [−1, 1]. A third internal criterion
// complementing the paper's Q; like IntraInter it runs in O(n·k·m) thanks
// to the Lemma 3 closed form (per-cluster mean/variance aggregates).
//
// Objects in singleton clusters score 0 (the standard convention); noise
// objects are skipped. Returns 0 for partitions with fewer than 2
// non-empty clusters.
func Silhouette(ds uncertain.Dataset, p clustering.Partition) float64 {
	cs := accumulate(ds, p)
	nonEmpty := 0
	for _, c := range cs {
		if c.size > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return 0
	}

	var total float64
	scored := 0
	for i, o := range ds {
		ci := p.Assign[i]
		if ci < 0 || ci >= p.K {
			continue
		}
		own := cs[ci]
		if own.size <= 1 {
			scored++ // silhouette 0 by convention
			continue
		}
		a := meanEEDToCluster(o, own, true)
		b := math.Inf(1)
		for cj := range cs {
			if cj == ci || cs[cj].size == 0 {
				continue
			}
			if d := meanEEDToCluster(o, cs[cj], false); d < b {
				b = d
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
		scored++
	}
	if scored == 0 {
		return 0
	}
	return total / float64(scored)
}

// meanEEDToCluster returns the mean ÊD(o, o′) over the members of the
// cluster summarized by cs, excluding o itself when own is true:
//
//	Σ_{o′} ÊD(o,o′) = |C|(‖µ(o)‖² + σ²(o)) + Σ‖µ(o′)‖² + Σσ²(o′)
//	                  − 2 µ(o)·Σµ(o′)
func meanEEDToCluster(o *uncertain.Object, cs clusterSums, own bool) float64 {
	mu := o.Mean()
	selfSq := 0.0
	for _, v := range mu {
		selfSq += v * v
	}
	n := float64(cs.size)
	sum := n*(selfSq+o.TotalVar()) + cs.sumSq + cs.sumVar
	var dot float64
	for j, v := range mu {
		dot += v * cs.sumMu[j]
	}
	sum -= 2 * dot
	if own {
		// Remove the o-to-o term ÊD(o,o) = 2σ²(o) and divide by |C|−1.
		sum -= 2 * o.TotalVar()
		return sum / (n - 1)
	}
	return sum / n
}
