// Package ucpc is the public API of this repository: a from-scratch Go
// implementation of "Uncertain Centroid based Partitional Clustering of
// Uncertain Data" (Gullo & Tagarelli, PVLDB 5(7), 2012) together with every
// baseline the paper evaluates against.
//
// The central abstraction is the uncertain object o = (R, f): a
// multidimensional box region R with a probability density f, represented
// here by independent per-dimension marginal distributions with exact
// closed-form moments. On top of it the package offers:
//
//   - UCPC, the paper's contribution: partitional clustering driven by the
//     U-centroid compactness criterion J(C) = |C|⁻¹Σσ²(o) + J_UK(C)
//     (Theorem 3), with O(m) incremental relocation scoring (Corollary 1);
//   - the competing methods: UK-means (fast and basic), MinMax-BB, VDBiP,
//     MMVar, UK-medoids, U-AHC, FDBSCAN, FOPTICS;
//   - validity criteria (F-measure, Q), uncertainty generation, dataset
//     synthesis, and the harness reproducing the paper's Tables 2–3 and
//     Figures 4–5 (see cmd/uncbench).
//
// Quick start (one-shot):
//
//	objs := ucpc.Dataset{
//	    ucpc.NewNormalObject(0, []float64{1, 2}, []float64{0.3, 0.3}, 0.95),
//	    ucpc.NewNormalObject(1, []float64{9, 8}, []float64{0.4, 0.2}, 0.95),
//	    // ...
//	}
//	rep, err := ucpc.Cluster(objs, 2, ucpc.Options{Seed: 42})
//
// Fit once, assign many (the serving path — see Clusterer and Model):
//
//	clusterer := &ucpc.Clusterer{Algorithm: "UCPC", Config: ucpc.Config{Seed: 42}}
//	model, err := clusterer.Fit(ctx, objs, 2)
//	ids, err := model.Assign(ctx, freshObjs) // frozen U-centroids, pruned EED scoring
package ucpc

import (
	"context"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/dist"
	"ucpc/internal/eval"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"

	// The algorithm packages register themselves with the shared registry
	// (clustering.Register) from init functions; importing them here is
	// what makes every method constructable through NewAlgorithm and
	// listed by AlgorithmNames.
	_ "ucpc/internal/fdbscan"
	_ "ucpc/internal/foptics"
	_ "ucpc/internal/mmvar"
	_ "ucpc/internal/uahc"
	_ "ucpc/internal/ukmeans"
	_ "ucpc/internal/ukmedoids"
)

// Core model types, aliased from the internal packages so external callers
// can name them.
type (
	// Object is a multivariate uncertain object (paper Def. 1).
	Object = uncertain.Object
	// Dataset is an ordered collection of uncertain objects.
	Dataset = uncertain.Dataset
	// Distribution is a univariate marginal with exact moments.
	Distribution = dist.Distribution
	// Partition maps object indexes to cluster ids.
	Partition = clustering.Partition
	// Report is the outcome of one clustering run.
	Report = clustering.Report
	// Algorithm is a complete clustering method.
	Algorithm = clustering.Algorithm
	// RNG is the deterministic random source used across the library.
	RNG = rng.RNG
	// UCentroid is the paper's uncertain cluster centroid (Theorem 1).
	UCentroid = core.UCentroid
)

// Noise is the assignment value for objects outside every cluster.
const Noise = clustering.Noise

// NewRNG returns a deterministic random source.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// UniformDist returns the Uniform distribution on [lo, hi].
func UniformDist(lo, hi float64) Distribution { return dist.NewUniform(lo, hi) }

// NormalDist returns a Normal(mu, sigma²) truncated to its central `mass`
// (e.g. 0.95) so the object's domain region is finite; the mean stays mu.
func NormalDist(mu, sigma, mass float64) Distribution {
	return dist.NewTruncNormalCentral(mu, sigma, mass)
}

// ExponentialDist returns a shifted Exponential with the given rate,
// truncated to its lower `mass` quantiles and re-shifted so the truncated
// mean is exactly mean.
func ExponentialDist(mean, rate, mass float64) Distribution {
	return dist.NewTruncExponentialMass(mean, rate, mass)
}

// PointDist returns the degenerate distribution at x.
func PointDist(x float64) Distribution { return dist.NewPointMass(x) }

// NewObject builds an uncertain object from per-dimension marginals.
func NewObject(id int, marginals []Distribution) *Object {
	return uncertain.NewObject(id, marginals)
}

// NewPointObject builds a deterministic object (all point masses).
func NewPointObject(id int, x []float64) *Object { return uncertain.FromPoint(id, x) }

// NewUniformObject builds an object with Uniform marginals centered at
// center with the given total widths.
func NewUniformObject(id int, center, widths []float64) *Object {
	ms := make([]Distribution, len(center))
	for j := range center {
		ms[j] = dist.NewUniformAround(center[j], widths[j])
	}
	return uncertain.NewObject(id, ms)
}

// NewNormalObject builds an object with truncated-Normal marginals centered
// at center with the given sigmas, each restricted to its central mass
// (e.g. 0.95).
func NewNormalObject(id int, center, sigmas []float64, mass float64) *Object {
	ms := make([]Distribution, len(center))
	for j := range center {
		ms[j] = dist.NewTruncNormalCentral(center[j], sigmas[j], mass)
	}
	return uncertain.NewObject(id, ms)
}

// NewUCentroid builds the U-centroid of a cluster of uncertain objects.
func NewUCentroid(members []*Object) *UCentroid { return core.NewUCentroid(members) }

// EED returns the squared expected distance ÊD between two uncertain
// objects (paper Lemma 3).
func EED(a, b *Object) float64 { return uncertain.EED(a, b) }

// ED returns the expected squared distance between an uncertain object and
// a deterministic point (paper eq. 8).
func ED(o *Object, y []float64) float64 { return uncertain.ED(o, y) }

// Options configures the one-shot Cluster call. It is the flat, historical
// form of (Algorithm, Config), retained as a thin compatibility adapter:
// Options.Config is the only conversion path, and Cluster forwards through
// it into a Clusterer, so the two entry points cannot drift apart. New code
// should construct a Clusterer (and, for streaming or sharded fits, a
// StreamClusterer / ShardedClusterer) with a Config directly — see the
// README's migration table.
type Options struct {
	// Algorithm selects the method by its paper abbreviation: "UCPC"
	// (default), "UKM", "bUKM", "MinMax-BB", "VDBiP", "MMV", "UKmed",
	// "UAHC", "FDB", "FOPT" — see AlgorithmNames for the full list.
	Algorithm string
	// Seed drives all of the run's randomness. The zero value means
	// DefaultSeed (seed 0 itself is not a valid run seed); every other
	// value is used verbatim.
	Seed uint64
	// MaxIter caps the iterations of iterative methods (0 = per-method
	// default).
	MaxIter int
	// Workers sizes the worker pool of the parallel assignment steps
	// (0 = one worker per CPU). Parallel phases only cover order-
	// independent work, so for a fixed Seed the resulting Partition is
	// identical for every Workers value.
	Workers int
	// Pruning toggles the exact bound-based pruning engine in the
	// assignment and relocation hot loops (default PruneAuto = on).
	// Pruning is provably exact: for a fixed Seed the resulting Partition
	// is identical with pruning on or off; only the amount of distance
	// arithmetic differs. Report.PrunedCandidates / ScannedCandidates
	// expose the engine's hit rate. Set PruneOff for bound-free baseline
	// measurements.
	Pruning PruneMode
	// Progress, when non-nil, observes every outer iteration of the
	// iterative methods (objective value and move count); see
	// Config.Progress.
	Progress ProgressFunc
}

// Config converts the flat Options into the shared Config — the single
// Options→Config conversion path. Every field maps one-to-one; the
// Algorithm field has no Config counterpart (it selects the method, it
// does not configure it) and travels separately.
func (o Options) Config() Config {
	return Config{
		Workers:  o.Workers,
		Pruning:  o.Pruning,
		MaxIter:  o.MaxIter,
		Seed:     o.Seed,
		Progress: o.Progress,
	}
}

// PruneMode selects whether the exact pruning engine is active; see
// Options.Pruning.
type PruneMode = clustering.PruneMode

// The accepted Options.Pruning values.
const (
	// PruneAuto (zero value) means pruning on.
	PruneAuto = clustering.PruneAuto
	// PruneOn forces pruning on.
	PruneOn = clustering.PruneOn
	// PruneOff disables all bound tests (exhaustive scans).
	PruneOff = clustering.PruneOff
)

// AlgorithmNames lists the accepted algorithm names, in the paper's lineup
// order. "UCPC-Lloyd" (batch ablation) and "UCPC-Bisect" (divisive
// hierarchical extension) are this repository's additions; the other nine
// are the paper's lineup. The list is read from the self-registering
// algorithm registry, so it is exactly the set NewAlgorithm constructs —
// names and constructors cannot drift apart.
func AlgorithmNames() []string { return clustering.AlgorithmNames() }

// NewAlgorithm instantiates a clustering method by its paper abbreviation
// ("" means "UCPC"), threading the shared Config through the method's
// registered constructor.
func NewAlgorithm(name string, cfg Config) (Algorithm, error) {
	return clustering.NewAlgorithm(name, cfg)
}

// Cluster partitions the dataset into k clusters with the selected
// algorithm (UCPC by default). It is a thin wrapper over Clusterer.Fit with
// a background context: for cancellation, per-iteration progress, or
// fit-once/assign-many serving, use Clusterer directly. The partitions the
// two entry points produce are identical for identical configurations.
func Cluster(ds Dataset, k int, opt Options) (*Report, error) {
	model, err := (&Clusterer{Algorithm: opt.Algorithm, Config: opt.Config()}).Fit(context.Background(), ds, k)
	if err != nil {
		return nil, err
	}
	return model.Report(), nil
}

// FMeasure scores a partition against reference labels (paper §5.1).
func FMeasure(p Partition, labels []int) float64 { return eval.FMeasure(p, labels) }

// Quality scores a partition with the internal criterion Q = inter − intra
// (paper §5.1), in [−1, 1]; higher is better.
func Quality(ds Dataset, p Partition) float64 { return eval.Quality(ds, p) }

// Objective returns the UCPC objective Σ_C J(C) of an arbitrary assignment
// (Theorem 3 closed form).
func Objective(ds Dataset, assign []int, k int) float64 {
	return core.Objective(ds, assign, k)
}
