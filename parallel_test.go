package ucpc_test

import (
	"runtime"
	"testing"

	"ucpc"
)

// TestPartitionInvariantUnderWorkerCount is the determinism contract of the
// parallel engine: for a fixed Options.Seed, the produced Partition must be
// bit-identical for every worker-pool size, because parallel phases only
// ever cover order-independent per-object work.
func TestPartitionInvariantUnderWorkerCount(t *testing.T) {
	ds := benchDataset(400)
	algorithms := []string{"UCPC", "UCPC-Lloyd", "UCPC-Bisect", "UKM"}
	workerCounts := []int{1, 2, 3, 7, 0} // 0 = GOMAXPROCS
	for _, alg := range algorithms {
		var base []int
		for _, w := range workerCounts {
			rep, err := ucpc.Cluster(ds, 4, ucpc.Options{Algorithm: alg, Seed: 123, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg, w, err)
			}
			if base == nil {
				base = rep.Partition.Assign
				continue
			}
			for i := range base {
				if rep.Partition.Assign[i] != base[i] {
					t.Fatalf("%s: workers=%d diverges from workers=%d at object %d",
						alg, w, workerCounts[0], i)
				}
			}
		}
	}
}

// TestWorkersDefaultIsUsable smoke-tests the GOMAXPROCS default on a
// machine with however many CPUs CI gives us.
func TestWorkersDefaultIsUsable(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 1 {
		t.Skip("no CPUs reported")
	}
	ds := benchDataset(100)
	rep, err := ucpc.Cluster(ds, 4, ucpc.Options{Seed: 7}) // Workers: 0
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rep.Partition.NonEmpty() {
		t.Error("empty cluster with default worker pool")
	}
}
