package ucpc_test

import (
	"testing"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

// pruningDataset materializes a benchmark-shaped uncertain dataset large
// enough for the pruning engine to have real work.
func pruningDataset(name string, scale float64, seed uint64) ucpc.Dataset {
	spec, err := datasets.BenchmarkByName(name)
	if err != nil {
		panic(err)
	}
	d := datasets.Generate(spec, seed).Scale(scale)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 0.8}).Assign(d, rng.New(seed^0x9e))
	return set.Objects(d)
}

// TestPruningExactness is the engines' headline guarantee: for every
// algorithm wired into a pruning engine — the bound-based Assigner, the
// incremental-statistics RelocEngine (UCPC, MMV, and UCPC-Bisect's 2-way
// sub-runs), and the UK-medoids closed-form medoid filter — and several
// seeds, pruning on vs. off produces byte-identical partitions, identical
// iteration counts, and identical objectives — while actually pruning work.
func TestPruningExactness(t *testing.T) {
	cases := []struct {
		ds   ucpc.Dataset
		name string
		k    int
	}{
		{pruningDataset("Iris", 1, 3), "Iris", 3},
		{pruningDataset("Ecoli", 0.6, 5), "Ecoli", 8},
	}
	algorithms := []string{"UCPC", "UCPC-Lloyd", "UCPC-Bisect", "UKM", "MMV", "UKmed"}
	seeds := []uint64{1, 42, 977}

	for _, tc := range cases {
		for _, alg := range algorithms {
			var prunedTotal int64
			for _, seed := range seeds {
				on, err := ucpc.Cluster(tc.ds, tc.k, ucpc.Options{
					Algorithm: alg, Seed: seed, Pruning: ucpc.PruneOn,
				})
				if err != nil {
					t.Fatalf("%s/%s seed %d (pruning on): %v", tc.name, alg, seed, err)
				}
				off, err := ucpc.Cluster(tc.ds, tc.k, ucpc.Options{
					Algorithm: alg, Seed: seed, Pruning: ucpc.PruneOff,
				})
				if err != nil {
					t.Fatalf("%s/%s seed %d (pruning off): %v", tc.name, alg, seed, err)
				}
				for i := range on.Partition.Assign {
					if on.Partition.Assign[i] != off.Partition.Assign[i] {
						t.Fatalf("%s/%s seed %d: partitions diverge at object %d (pruned %d, unpruned %d)",
							tc.name, alg, seed, i, on.Partition.Assign[i], off.Partition.Assign[i])
					}
				}
				if on.Iterations != off.Iterations {
					t.Errorf("%s/%s seed %d: iterations %d (pruned) vs %d (unpruned)",
						tc.name, alg, seed, on.Iterations, off.Iterations)
				}
				if on.Objective != off.Objective {
					t.Errorf("%s/%s seed %d: objective %v (pruned) vs %v (unpruned)",
						tc.name, alg, seed, on.Objective, off.Objective)
				}
				if off.PrunedCandidates != 0 {
					t.Errorf("%s/%s seed %d: unpruned run reports %d pruned candidates",
						tc.name, alg, seed, off.PrunedCandidates)
				}
				prunedTotal += on.PrunedCandidates
			}
			if prunedTotal == 0 {
				t.Errorf("%s/%s: pruning never fired across %d seeds", tc.name, alg, len(seeds))
			}
		}
	}
}

// TestPruningDefaultOn: the zero Options value runs with the engine active,
// and the report exposes a meaningful hit rate.
func TestPruningDefaultOn(t *testing.T) {
	ds := pruningDataset("Iris", 1, 9)
	rep, err := ucpc.Cluster(ds, 3, ucpc.Options{Algorithm: "UCPC-Lloyd", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrunedCandidates == 0 {
		t.Error("default options: no pruning recorded")
	}
	if f := rep.PrunedFraction(); f <= 0 || f >= 1 {
		t.Errorf("pruned fraction %v outside (0,1)", f)
	}
}
