package ucpc_test

import (
	"context"
	"testing"

	"ucpc"
	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/datasets"
	"ucpc/internal/mmvar"
	"ucpc/internal/rng"
	"ucpc/internal/ukmeans"
	"ucpc/internal/uncgen"
)

// pruningDataset materializes a benchmark-shaped uncertain dataset large
// enough for the pruning engine to have real work.
func pruningDataset(name string, scale float64, seed uint64) ucpc.Dataset {
	spec, err := datasets.BenchmarkByName(name)
	if err != nil {
		panic(err)
	}
	d := datasets.Generate(spec, seed).Scale(scale)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 0.8}).Assign(d, rng.New(seed^0x9e))
	return set.Objects(d)
}

// duplicateTieDataset builds a dataset of identical-object groups: every
// base object appears `copies` times verbatim, so candidate scores tie
// bit-for-bit whichever order they are evaluated in. Degenerate ties are
// the adversarial input for the pruning engines' sticky/lowest-index tie
// rules: a bound or reduced-form filter that decided a tie differently
// from the exhaustive scan would diverge here immediately.
func duplicateTieDataset(seed uint64, copies int) ucpc.Dataset {
	base := pruningDataset("Iris", 0.4, seed)
	out := make(ucpc.Dataset, 0, len(base)*copies)
	for _, o := range base {
		for c := 0; c < copies; c++ {
			out = append(out, o)
		}
	}
	return out
}

// TestPruningExactness is the engines' headline guarantee: for every
// algorithm wired into a pruning engine — the bound-based Assigner, the
// incremental-statistics RelocEngine (UCPC, MMV, and UCPC-Bisect's 2-way
// sub-runs), and the UK-medoids closed-form medoid filter — and several
// seeds, pruning on vs. off produces byte-identical partitions, identical
// iteration counts, and identical objectives — while actually pruning work.
func TestPruningExactness(t *testing.T) {
	cases := []struct {
		ds   ucpc.Dataset
		name string
		k    int
	}{
		{pruningDataset("Iris", 1, 3), "Iris", 3},
		{pruningDataset("Ecoli", 0.6, 5), "Ecoli", 8},
		{duplicateTieDataset(7, 4), "DupTies", 5},
	}
	algorithms := []string{"UCPC", "UCPC-Lloyd", "UCPC-Bisect", "UKM", "MMV", "UKmed"}
	seeds := []uint64{1, 42, 977}

	for _, tc := range cases {
		for _, alg := range algorithms {
			var prunedTotal int64
			for _, seed := range seeds {
				on, err := ucpc.Cluster(tc.ds, tc.k, ucpc.Options{
					Algorithm: alg, Seed: seed, Pruning: ucpc.PruneOn,
				})
				if err != nil {
					t.Fatalf("%s/%s seed %d (pruning on): %v", tc.name, alg, seed, err)
				}
				off, err := ucpc.Cluster(tc.ds, tc.k, ucpc.Options{
					Algorithm: alg, Seed: seed, Pruning: ucpc.PruneOff,
				})
				if err != nil {
					t.Fatalf("%s/%s seed %d (pruning off): %v", tc.name, alg, seed, err)
				}
				for i := range on.Partition.Assign {
					if on.Partition.Assign[i] != off.Partition.Assign[i] {
						t.Fatalf("%s/%s seed %d: partitions diverge at object %d (pruned %d, unpruned %d)",
							tc.name, alg, seed, i, on.Partition.Assign[i], off.Partition.Assign[i])
					}
				}
				if on.Iterations != off.Iterations {
					t.Errorf("%s/%s seed %d: iterations %d (pruned) vs %d (unpruned)",
						tc.name, alg, seed, on.Iterations, off.Iterations)
				}
				if on.Objective != off.Objective {
					t.Errorf("%s/%s seed %d: objective %v (pruned) vs %v (unpruned)",
						tc.name, alg, seed, on.Objective, off.Objective)
				}
				if off.PrunedCandidates != 0 {
					t.Errorf("%s/%s seed %d: unpruned run reports %d pruned candidates",
						tc.name, alg, seed, off.PrunedCandidates)
				}
				prunedTotal += on.PrunedCandidates
			}
			if prunedTotal == 0 {
				t.Errorf("%s/%s: pruning never fired across %d seeds", tc.name, alg, len(seeds))
			}
		}
	}
}

// TestReducedExactness proves the König–Huygens reduced-form pre-filter is
// decision-neutral at whole-algorithm level: with pruning on, running each
// algorithm with the reduced scoring enabled vs disabled (every surviving
// candidate evaluated through the direct subtract-square kernel) yields
// byte-identical partitions, iteration counts, and objectives. UKM and
// UCPC-Lloyd exercise the filter in every assignment pass, UCPC (k-means++
// init) in its seed-assignment pass; MMV has no nearest-centroid phase, so
// it pins down that the toggle cannot leak into the relocation engine. The
// duplicate-object dataset forces degenerate ties through both forms.
func TestReducedExactness(t *testing.T) {
	cases := []struct {
		ds   ucpc.Dataset
		name string
		k    int
	}{
		{pruningDataset("Iris", 1, 3), "Iris", 3},
		{duplicateTieDataset(7, 4), "DupTies", 5},
	}
	algorithms := []clustering.Algorithm{
		&ukmeans.UKMeans{},
		&core.UCPCLloyd{},
		&core.UCPC{Init: core.InitKMeansPP},
		&mmvar.MMVar{},
	}
	seeds := []uint64{1, 42, 977}

	run := func(alg clustering.Algorithm, ds ucpc.Dataset, k int, seed uint64, reduced bool) *ucpc.Report {
		prev := core.SetReducedDefault(reduced)
		defer core.SetReducedDefault(prev)
		rep, err := alg.Cluster(context.Background(), ds, k, rng.New(seed))
		if err != nil {
			t.Fatalf("%s seed %d reduced=%v: %v", alg.Name(), seed, reduced, err)
		}
		return rep
	}

	for _, tc := range cases {
		for _, alg := range algorithms {
			for _, seed := range seeds {
				on := run(alg, tc.ds, tc.k, seed, true)
				off := run(alg, tc.ds, tc.k, seed, false)
				for i := range on.Partition.Assign {
					if on.Partition.Assign[i] != off.Partition.Assign[i] {
						t.Fatalf("%s/%s seed %d: partitions diverge at object %d (reduced %d, direct %d)",
							tc.name, alg.Name(), seed, i, on.Partition.Assign[i], off.Partition.Assign[i])
					}
				}
				if on.Iterations != off.Iterations {
					t.Errorf("%s/%s seed %d: iterations %d (reduced) vs %d (direct)",
						tc.name, alg.Name(), seed, on.Iterations, off.Iterations)
				}
				if on.Objective != off.Objective {
					t.Errorf("%s/%s seed %d: objective %v (reduced) vs %v (direct)",
						tc.name, alg.Name(), seed, on.Objective, off.Objective)
				}
			}
		}
	}
}

// TestPruningDefaultOn: the zero Options value runs with the engine active,
// and the report exposes a meaningful hit rate.
func TestPruningDefaultOn(t *testing.T) {
	ds := pruningDataset("Iris", 1, 9)
	rep, err := ucpc.Cluster(ds, 3, ucpc.Options{Algorithm: "UCPC-Lloyd", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrunedCandidates == 0 {
		t.Error("default options: no pruning recorded")
	}
	if f := rep.PrunedFraction(); f <= 0 || f >= 1 {
		t.Errorf("pruned fraction %v outside (0,1)", f)
	}
}
