package ucpc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ucpc/internal/clustering"
	"ucpc/internal/stream"
)

// StreamConfig configures the mini-batch streaming engine: BatchSize,
// Decay (per-batch exponential forgetting), MaxBatches, plus the shared
// Workers/Pruning/Seed knobs. Aliased from the internal registry layer so
// one value means the same thing everywhere.
type StreamConfig = clustering.StreamConfig

// The typed streaming errors; test with errors.Is.
var (
	// ErrStreamBudget marks an Observe rejected because the
	// StreamConfig.MaxBatches budget is exhausted.
	ErrStreamBudget = clustering.ErrStreamBudget
	// ErrStreamCold marks a Snapshot taken before the stream has observed
	// enough objects (k, cold start) to seed its centroids.
	ErrStreamCold = clustering.ErrStreamCold
)

// StreamClusterer is the out-of-core counterpart of Clusterer: a mini-batch
// UCPC session for datasets that do not fit in one in-memory pass, and for
// models that must refresh as new uncertain objects arrive.
//
// Begin opens a StreamFit; Observe feeds it uncertain objects in arbitrary
// portions (internally re-chunked to Config.BatchSize mini-batches, each
// scored against the current centroids through the exact pruned assignment
// engine and folded into decayed per-cluster sufficient statistics — the
// classic mini-batch k-means decaying learning rate, generalized to the
// paper's U-centroid statistics); Snapshot freezes the current centroids as
// a regular Model at any time, without stopping the stream.
//
// The resident memory of a StreamFit is O(BatchSize·dims) regardless of how
// many objects stream through: moment rows live in one recycled window, and
// only the k per-cluster statistics persist.
type StreamClusterer struct {
	// Config is the streaming run configuration.
	Config StreamConfig
}

// Begin opens a streaming fit for k clusters. The dimensionality is fixed
// by the first observed object; the centroids are seeded from the first
// BatchSize-or-so observed objects — a random partition refined to a Lloyd
// fixed point on that window, the same initialization character as the
// batch fits — and every later batch then nudges them. k < 1 returns a
// wrapped ErrBadK; a Decay outside [0, 1) is rejected. ctx is reserved for
// symmetry with Fit (Begin itself does not block).
func (s *StreamClusterer) Begin(ctx context.Context, k int) (*StreamFit, error) {
	_ = clustering.Ctx(ctx)
	eng, err := stream.New(k, s.Config)
	if err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	return &StreamFit{eng: eng, cfg: s.Config}, nil
}

// BeginFrom opens a streaming fit warm-started from a fitted model's frozen
// centroid state — the serving-refresh path: keep assigning with the old
// model while a stream fit tracks new data, then swap in a Snapshot.
//
// The model's per-cluster prototypes seed both the centroid positions and
// the statistical mass (weight = training cardinality), so early batches
// nudge rather than overwrite the learned structure. A Snapshot taken
// before any Observe reproduces the seed model's centroids bit for bit.
// Only models with U-centroid or centroid-point prototypes (the UCPC
// family, UAHC, FDB, FOPT, UK-means family) can seed a stream; mixture and
// medoid models return a wrapped ErrWarmStartUnsupported.
func (s *StreamClusterer) BeginFrom(ctx context.Context, model *Model) (*StreamFit, error) {
	_ = clustering.Ctx(ctx)
	if model == nil {
		return nil, errors.New("ucpc: BeginFrom with nil model")
	}
	if model.proto != clustering.ProtoUCentroid && model.proto != clustering.ProtoMean {
		return nil, fmt.Errorf("ucpc: stream warm start from %s (prototype kind %d): %w",
			model.algorithm, model.proto, ErrWarmStartUnsupported)
	}
	if !model.hasMembers {
		return nil, fmt.Errorf("ucpc: stream warm start from a model with no training members: %w",
			ErrWarmStartUnsupported)
	}
	weights := make([]float64, model.k)
	for c, s := range model.sizes {
		weights[c] = float64(s)
	}
	eng, err := stream.NewFrom(model.k, model.dims, model.means, model.adds, weights, s.Config)
	if err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	return &StreamFit{eng: eng, cfg: s.Config}, nil
}

// StreamFit is one in-progress mini-batch fit. It is safe for concurrent
// use: Observe calls serialize behind the engine lock (callers block one
// another, never corrupt state), and Snapshot can be taken from other
// goroutines at any time — it returns an independent frozen Model and never
// blocks the stream for longer than one centroid copy.
type StreamFit struct {
	eng *stream.Engine
	cfg StreamConfig
}

// Observe ingests uncertain objects into the stream: the input is split
// into mini-batches of Config.BatchSize, each scored against the current
// centroids and folded into the decayed per-cluster statistics. Moment rows
// are copied into the fit's resident window, so the caller may reuse or
// drop the objects afterwards.
//
// Objects must match the stream's dimensionality (wrapped ErrDimMismatch
// otherwise); once Config.MaxBatches mini-batches have been ingested,
// further input is rejected with a wrapped ErrStreamBudget. ctx is checked
// between mini-batches. In steady state — after the resident window has
// warmed up to the largest batch seen — Observe performs no heap
// allocations when Config.Workers is 1.
func (f *StreamFit) Observe(ctx context.Context, objs Dataset) error {
	return f.eng.Observe(ctx, objs)
}

// Snapshot freezes the stream's current centroids as a Model, without
// stopping the stream: the model's prototypes are the weighted U-centroids
// of everything observed so far (mean = S_c/W_c, Var = Ψ_c/W_c², the
// weighted Theorem-2 closed form), served through the same pruned
// Model.Assign path as a batch fit. The model declares "UCPC-Lloyd" — the
// batch counterpart of the mini-batch update — as its algorithm, so
// Clusterer.FitFrom can warm-start a full batch refit from a snapshot.
//
// A cold-start stream must have observed at least k objects first (wrapped
// ErrStreamCold otherwise); a warm-started stream can snapshot immediately,
// reproducing its seed model's centroids exactly.
func (f *StreamFit) Snapshot() (*Model, error) {
	fz, err := f.eng.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	return modelFromFrozen(fz, f.cfg), nil
}

// modelFromFrozen wraps an engine's frozen centroid state as a serving
// Model — the shared tail of StreamFit.Snapshot and ShardedFit.Snapshot.
// The model declares "UCPC-Lloyd" (the batch counterpart of the mini-batch
// update), so Clusterer.FitFrom can warm-start a batch refit from it.
func modelFromFrozen(fz *stream.Frozen, cfg StreamConfig) *Model {
	hasMembers := false
	if fz.HasMembers {
		for c := 0; c < fz.K; c++ {
			if !math.IsInf(fz.Adds[c], 1) {
				hasMembers = true
				break
			}
		}
	}
	return &Model{
		algorithm: "UCPC-Lloyd",
		proto:     clustering.ProtoUCentroid,
		cfg:       Config{Workers: cfg.Workers, Pruning: cfg.Pruning, Seed: cfg.Seed},
		k:         fz.K,
		dims:      fz.Dims,
		report: &clustering.Report{
			Partition:  clustering.Partition{K: fz.K, Assign: []int{}},
			Objective:  fz.Objective,
			Iterations: fz.Batches,
		},
		means:      fz.Means,
		adds:       fz.Adds,
		sizes:      fz.Sizes,
		hasMembers: hasMembers,
	}
}

// ExportStats serializes the fit's current weighted sufficient statistics
// (W_c, S_c, Ψ_c, Φ_c per cluster) in the versioned WStats wire format —
// the payload an out-of-process worker ships to a coordinator's
// ShardedFit.AddRemoteStats. A cold stream (fewer than k objects observed)
// fails with a wrapped ErrStreamCold.
func (f *StreamFit) ExportStats() ([]byte, error) {
	st, err := f.eng.ExportStats()
	if err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	return st.WS.MarshalBinary()
}

// Seen returns the number of objects folded into the stream so far.
func (f *StreamFit) Seen() int64 { return f.eng.Seen() }

// Batches returns the number of mini-batches processed so far.
func (f *StreamFit) Batches() int { return f.eng.Batches() }

// ResidentBytes returns the high-water footprint of the fit's resident
// moment window — the quantity that stays O(BatchSize·dims) as the stream
// grows.
func (f *StreamFit) ResidentBytes() int64 { return f.eng.ResidentBytes() }
