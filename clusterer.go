package ucpc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ucpc/internal/clustering"
	"ucpc/internal/core"
	"ucpc/internal/rng"
	"ucpc/internal/uncertain"
)

// Config is the run configuration shared by every algorithm (aliased from
// the internal registry layer): worker-pool size, pruning mode, iteration
// cap, seed, and the per-iteration Progress callback. A single Config value
// means the same thing for every method.
type Config = clustering.Config

// ProgressEvent is one per-iteration report of an iterative algorithm.
type ProgressEvent = clustering.ProgressEvent

// ProgressFunc observes per-iteration progress; see Config.Progress.
type ProgressFunc = clustering.ProgressFunc

// DefaultSeed is the seed used whenever Options.Seed / Config.Seed is left
// at its zero value (seed 0 itself is reserved by the deterministic RNG).
// The cmd/ binaries default their -seed flags to this same constant.
const DefaultSeed = clustering.DefaultSeed

// The typed validation errors every entry point wraps; test with errors.Is.
var (
	// ErrBadK marks a cluster count outside [1, n].
	ErrBadK = clustering.ErrBadK
	// ErrEmptyDataset marks a dataset with no objects.
	ErrEmptyDataset = uncertain.ErrEmptyDataset
	// ErrDimMismatch marks objects of differing dimensionality, within a
	// dataset or between a Model and the objects scored against it.
	ErrDimMismatch = uncertain.ErrDimMismatch
	// ErrWarmStartUnsupported marks a FitFrom on an algorithm that cannot
	// resume from an initial assignment (the single-shot methods UAHC,
	// FDB, FOPT; the sample-based UK-means variants; UCPC-Bisect).
	ErrWarmStartUnsupported = clustering.ErrWarmStartUnsupported
	// ErrBadConfig marks an invalid run configuration — a negative worker
	// or shard count, a Decay outside [0, 1), a partitioner returning an
	// out-of-range shard (see Config.Validate and StreamConfig.Validate).
	ErrBadConfig = clustering.ErrBadConfig
)

// Clusterer is a reusable clustering session: an algorithm choice plus the
// shared Config. Fit builds a Model (the frozen outcome of one training
// run); the Model then serves out-of-sample assignment without refitting —
// the fit-once/assign-many split of the paper's Theorem 1 / Corollary 1,
// where U-centroids are built from a cluster once and fresh objects are
// scored against them by expected distance.
//
// The zero value is ready to use: it fits UCPC with default configuration.
// A Clusterer is stateless across calls (every Fit constructs a fresh
// algorithm instance), so one value may be shared by concurrent fits.
type Clusterer struct {
	// Algorithm selects the method by its paper abbreviation ("" means
	// "UCPC"); see AlgorithmNames.
	Algorithm string
	// Config is the shared run configuration.
	Config Config
}

// Fit partitions ds into k clusters and freezes the outcome as a Model.
// Inputs are validated up front: a nil/empty dataset returns
// ErrEmptyDataset, mixed dimensionalities return ErrDimMismatch, and k
// outside [1, n] returns ErrBadK (all wrapped; test with errors.Is). For
// the density-based methods (FDB, FOPT) k is only a calibration hint and
// the n ceiling does not apply.
//
// ctx cancels the run: iterative methods check it every iteration (and
// within passes on large datasets) and return ctx.Err(). A nil ctx means
// context.Background().
func (c *Clusterer) Fit(ctx context.Context, ds Dataset, k int) (*Model, error) {
	ctx = clustering.Ctx(ctx)
	if err := c.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	reg, ok := clustering.Lookup(c.Algorithm)
	if !ok {
		return nil, fmt.Errorf("ucpc: unknown algorithm %q (valid: %v)", c.Algorithm, AlgorithmNames())
	}
	// Density-based methods treat k as a calibration hint only (the
	// cluster count is data-driven), so k > n stays legal for them —
	// exactly as before the up-front validation existed.
	kCeil := len(ds)
	if reg.KIsHint && k > kCeil {
		kCeil = k
	}
	if err := clustering.ValidateK("ucpc", k, kCeil); err != nil {
		return nil, err
	}
	rep, err := reg.New(c.Config).Cluster(ctx, ds, k, rng.New(c.Config.SeedOrDefault()))
	if err != nil {
		return nil, err
	}
	return newModel(reg, c.Config, ds, rep)
}

// FitFrom warm-starts a new fit on ds from a previously fitted model: ds is
// first assigned to the model's frozen centroids (Model.Assign), and the
// model's algorithm then iterates from that partition instead of a fresh
// random/k-means++ initialization. This is the serving-refresh path — refit
// on grown or drifted data without discarding the learned structure.
//
// The new fit uses the model's algorithm and cluster count with the
// receiver's Config (Clusterer.Algorithm, if set, must agree with the
// model's). Algorithms without warm-start support return
// ErrWarmStartUnsupported.
func (c *Clusterer) FitFrom(ctx context.Context, model *Model, ds Dataset) (*Model, error) {
	ctx = clustering.Ctx(ctx)
	if model == nil {
		return nil, errors.New("ucpc: FitFrom with nil model")
	}
	if c.Algorithm != "" && c.Algorithm != model.algorithm {
		return nil, fmt.Errorf("ucpc: FitFrom algorithm mismatch: clusterer wants %q, model was fitted with %q",
			c.Algorithm, model.algorithm)
	}
	if err := c.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ucpc: %w", err)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.Dims() != model.dims {
		return nil, fmt.Errorf("ucpc: dataset dim %d vs model dim %d: %w", ds.Dims(), model.dims, ErrDimMismatch)
	}
	k := model.k
	if err := clustering.ValidateK("ucpc", k, len(ds)); err != nil {
		return nil, err
	}
	reg, ok := clustering.Lookup(model.algorithm)
	if !ok {
		return nil, fmt.Errorf("ucpc: unknown algorithm %q (valid: %v)", model.algorithm, AlgorithmNames())
	}
	ws, ok := reg.New(c.Config).(clustering.WarmStarter)
	if !ok {
		return nil, fmt.Errorf("ucpc: %s: %w", model.algorithm, ErrWarmStartUnsupported)
	}
	init, err := model.Assign(ctx, ds)
	if err != nil {
		return nil, err
	}
	rep, err := ws.ClusterFrom(ctx, ds, k, init, rng.New(c.Config.SeedOrDefault()))
	if err != nil {
		return nil, err
	}
	return newModel(reg, c.Config, ds, rep)
}

// Centroid is one frozen cluster prototype of a fitted Model. Every
// prototype kind scores a fresh object o with the same rule,
//
//	score(o, c) = ‖µ(o) − Mean_c‖² + Var_c,
//
// which — up to the additive constant σ²(o) — is ÊD(o, ·) to the U-centroid
// (UCPC family, UAHC, FDB, FOPT), ED(o, ·) to the centroid point (UK-means
// family, Var = 0), ÊD(o, ·) to the mixture centroid (MMV), or ÊD(o, ·) to
// the medoid object (UKmed).
type Centroid struct {
	// Mean is the prototype position (the frozen µ of the U-centroid,
	// cluster mean, mixture centroid, or medoid object).
	Mean []float64
	// Var is the additive variance term of the scoring rule: σ²(C̄) for
	// U-centroids, 0 for centroid points, σ²(C_MM) for mixture centroids,
	// σ²(medoid) for medoids. +Inf marks a cluster with no training
	// members (it can never win an assignment).
	Var float64
	// Size is the cluster's training cardinality (noise excluded).
	Size int
	// Medoid is the training-set index of the representative object for
	// medoid models, -1 otherwise.
	Medoid int
}

// Model is the frozen outcome of one Fit: the training partition and
// report, plus per-cluster prototypes for out-of-sample assignment. A Model
// is immutable and safe for concurrent use — one fitted model can serve
// Assign calls from many goroutines at once.
type Model struct {
	algorithm string
	proto     clustering.Prototype
	cfg       Config
	k, dims   int
	report    *clustering.Report

	means      []float64 // k*dims, row-major prototype positions
	adds       []float64 // k additive variance terms
	sizes      []int     // training cardinality per cluster
	medoids    []int     // training medoid index per cluster; nil unless ProtoMedoid
	hasMembers bool      // at least one cluster has a training member
}

// newModel freezes the per-cluster prototypes of the report's partition.
func newModel(reg clustering.Registration, cfg Config, ds Dataset, rep *clustering.Report) (*Model, error) {
	mom := uncertain.MomentsOf(ds)
	k, m := rep.Partition.K, mom.Dims()
	model := &Model{
		algorithm: reg.Name,
		proto:     reg.Prototype,
		cfg:       cfg,
		k:         k,
		dims:      m,
		report:    rep,
		means:     make([]float64, k*m),
		adds:      make([]float64, k),
		sizes:     rep.Partition.Sizes(),
	}

	for _, s := range model.sizes {
		if s > 0 {
			model.hasMembers = true
			break
		}
	}

	if reg.Prototype == clustering.ProtoMedoid {
		if len(rep.Medoids) != k {
			return nil, fmt.Errorf("ucpc: %s report carries %d medoids for k=%d", reg.Name, len(rep.Medoids), k)
		}
		model.medoids = append([]int(nil), rep.Medoids...)
		for c, i := range model.medoids {
			copy(model.means[c*m:(c+1)*m], mom.Mu(i))
			model.adds[c] = mom.TotalVar(i)
		}
		return model, nil
	}

	// Aggregate Σµ, Σµ₂, Σσ² per cluster (noise assignments excluded).
	sumMu := make([]float64, k*m)
	sumMu2 := make([]float64, k*m)
	sumVar := make([]float64, k)
	for i, c := range rep.Partition.Assign {
		if c < 0 || c >= k {
			continue
		}
		mu, mu2 := mom.Mu(i), mom.Mu2(i)
		row := c * m
		for j := 0; j < m; j++ {
			sumMu[row+j] += mu[j]
			sumMu2[row+j] += mu2[j]
		}
		sumVar[c] += mom.TotalVar(i)
	}
	// Global mean, the position given to empty clusters (paired with an
	// infinite Var so they never win an assignment).
	var global []float64
	for c := 0; c < k; c++ {
		n := float64(model.sizes[c])
		row := model.means[c*m : (c+1)*m]
		if model.sizes[c] == 0 {
			if global == nil {
				global = make([]float64, m)
				for i := 0; i < mom.Len(); i++ {
					mu := mom.Mu(i)
					for j := 0; j < m; j++ {
						global[j] += mu[j]
					}
				}
				for j := 0; j < m; j++ {
					global[j] /= float64(mom.Len())
				}
			}
			copy(row, global)
			model.adds[c] = math.Inf(1)
			continue
		}
		for j := 0; j < m; j++ {
			row[j] = sumMu[c*m+j] / n
		}
		switch reg.Prototype {
		case clustering.ProtoUCentroid:
			// Theorem 2: σ²(C̄) = |C|⁻² Σ σ²(o).
			model.adds[c] = sumVar[c] / (n * n)
		case clustering.ProtoMixture:
			// Lemma 2: σ²(C_MM) = Σ_j [ µ₂(C_MM)_j − µ(C_MM)_j² ].
			var v float64
			for j := 0; j < m; j++ {
				mean := sumMu[c*m+j] / n
				v += sumMu2[c*m+j]/n - mean*mean
			}
			model.adds[c] = v
		default: // ProtoMean: ED scoring has no additive term.
			model.adds[c] = 0
		}
	}
	return model, nil
}

// Algorithm returns the fitted method's name (e.g. "UCPC").
func (m *Model) Algorithm() string { return m.algorithm }

// K returns the number of clusters the model was fitted with. For the
// density-based methods this is the discovered cluster count, which may
// differ from the k requested at Fit time.
func (m *Model) K() int { return m.k }

// Dims returns the dimensionality of the training objects.
func (m *Model) Dims() int { return m.dims }

// Report returns the training run's full report (objective, iterations,
// timings, pruning counters). Shared with the model; do not modify.
func (m *Model) Report() *Report { return m.report }

// Partition returns the training partition. Shared with the model; do not
// modify its Assign slice.
func (m *Model) Partition() Partition { return m.report.Partition }

// Centroids returns the frozen per-cluster prototypes new objects are
// scored against. The Mean slices are copies; callers may keep them.
func (m *Model) Centroids() []Centroid {
	cs := make([]Centroid, m.k)
	for c := range cs {
		mean := make([]float64, m.dims)
		copy(mean, m.means[c*m.dims:(c+1)*m.dims])
		medoid := -1
		if m.medoids != nil {
			medoid = m.medoids[c]
		}
		cs[c] = Centroid{Mean: mean, Var: m.adds[c], Size: m.sizes[c], Medoid: medoid}
	}
	return cs
}

// AssignChunk is how many objects one Model.Assign batch hands to the
// pruning engine between context checks. A multiple of the engine's 64-row
// blocks, so chunked and unchunked scoring take identical bound decisions;
// large enough that the per-chunk ctx check and engine setup are invisible
// next to the O(chunk·k·m) scoring work. Exported so the ctx-overhead
// benchmark gate (internal/experiments) measures exactly the shipped
// checks-per-pass count.
const AssignChunk = 8192

// Assign scores objs against the model's frozen prototypes and returns the
// nearest cluster per object — the serving path: no refitting, no state
// change, safe for concurrent callers. Scoring runs through the exact
// bound-based pruning engine (the same machinery the training assignment
// steps use) under the model's Workers/Pruning configuration, and checks
// ctx between chunks of AssignChunk objects.
//
// Objects must match the model's dimensionality (ErrDimMismatch otherwise);
// an empty objs returns an empty, non-nil slice. For centroid-based models
// fitted to convergence, assigning the training set reproduces the training
// partition. A model whose training partition is all noise (possible for
// the density-based methods) has no prototype that can win, so every
// object is assigned Noise.
func (m *Model) Assign(ctx context.Context, objs Dataset) ([]int, error) {
	ctx = clustering.Ctx(ctx)
	if len(objs) == 0 {
		return []int{}, nil
	}
	if err := objs.Validate(); err != nil {
		return nil, err
	}
	if objs.Dims() != m.dims {
		return nil, fmt.Errorf("ucpc: object dim %d vs model dim %d: %w", objs.Dims(), m.dims, ErrDimMismatch)
	}
	out := make([]int, len(objs))
	if !m.hasMembers {
		// Every prototype carries an infinite Var (all-noise training
		// partition): nothing can win, so nothing is served a cluster.
		for i := range out {
			out[i] = Noise
		}
		return out, nil
	}
	for lo := 0; lo < len(objs); lo += AssignChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + AssignChunk
		if hi > len(objs) {
			hi = len(objs)
		}
		mom := uncertain.MomentsOf(objs[lo:hi])
		eng := core.NewAssigner(mom, m.k, m.cfg.Pruning.Enabled())
		eng.SetCenters(m.means, m.adds)
		chunk := out[lo:hi]
		for i := range chunk {
			chunk[i] = -1
		}
		eng.Assign(chunk, m.cfg.Workers)
	}
	return out, nil
}
