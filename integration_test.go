package ucpc_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/eval"
	"ucpc/internal/experiments"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

// TestEndToEndPipeline exercises the full library flow a downstream user
// would run: synthesize a benchmark-shaped dataset, attach uncertainty
// (§5.1), serialize it through the uncertain-CSV codec, cluster it with
// every algorithm, and validate the results with every criterion.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Dataset synthesis (Table 1 shape).
	spec, err := datasets.BenchmarkByName("Ecoli")
	if err != nil {
		t.Fatal(err)
	}
	d := datasets.Generate(spec, 99).Scale(0.3)

	// 2. Uncertainty generation: pdfs pinned at the points.
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 0.8}).Assign(d, rng.New(7))
	caseTwo := set.Objects(d)

	// 3. Serialization round trip.
	var buf bytes.Buffer
	if err := datasets.WriteUncertainCSV(&buf, caseTwo); err != nil {
		t.Fatal(err)
	}
	loaded, err := datasets.ReadUncertainCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(caseTwo) {
		t.Fatalf("round trip lost objects: %d vs %d", len(loaded), len(caseTwo))
	}

	// 4. Cluster the loaded objects with every algorithm.
	labels := loaded.Labels()
	for _, name := range ucpc.AlgorithmNames() {
		rep, err := ucpc.Cluster(loaded, spec.Classes, ucpc.Options{Algorithm: name, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := rep.Partition.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// 5. Validity criteria must all be finite and in range.
		f := eval.FMeasure(rep.Partition, labels)
		q := eval.Quality(loaded, rep.Partition)
		nmi := eval.NormalizedMutualInformation(rep.Partition, labels)
		sil := eval.Silhouette(loaded, rep.Partition)
		ari := eval.AdjustedRandIndex(rep.Partition, labels)
		for crit, v := range map[string]float64{"F": f, "Q": q, "NMI": nmi, "sil": sil, "ARI": ari} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", name, crit, v)
			}
		}
		if f < 0 || f > 1 || nmi < 0 || nmi > 1 {
			t.Errorf("%s: F=%v NMI=%v out of range", name, f, nmi)
		}
	}
}

// TestUncertaintyHelpsOnNoisyData is the paper's central claim as an
// integration test: with material uncertainty, clustering the uncertain
// objects (Case 2) beats clustering a perturbed deterministic sample
// (Case 1) for UCPC, averaged over runs.
func TestUncertaintyHelpsOnNoisyData(t *testing.T) {
	spec, err := datasets.BenchmarkByName("Yeast")
	if err != nil {
		t.Fatal(err)
	}
	d := datasets.Generate(spec, 3).Scale(0.1)
	set := (&uncgen.Generator{Model: uncgen.Normal, Intensity: 1.5}).Assign(d, rng.New(11))
	caseTwo := set.Objects(d)

	var theta float64
	const runs = 5
	for run := 0; run < runs; run++ {
		perturbed := set.Perturb(d, rng.New(uint64(100+run)))
		caseOne := uncgen.AsPointObjects(perturbed)
		r1, err := ucpc.Cluster(caseOne, spec.Classes, ucpc.Options{Seed: uint64(run + 1)})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ucpc.Cluster(caseTwo, spec.Classes, ucpc.Options{Seed: uint64(run + 1)})
		if err != nil {
			t.Fatal(err)
		}
		theta += eval.Theta(
			eval.FMeasure(r2.Partition, d.Labels),
			eval.FMeasure(r1.Partition, d.Labels)) / runs
	}
	if theta <= 0 {
		t.Errorf("Θ = %+.4f, expected modeling uncertainty to help on noisy data", theta)
	}
}

// TestExperimentHarnessSmoke runs one tiny cell of every experiment through
// the public harness, as cmd/uncbench would.
func TestExperimentHarnessSmoke(t *testing.T) {
	cfg := experiments.Config{Seed: 2, Runs: 1, Scale: 0.01, MinObjects: 60}
	if _, err := experiments.Table2(context.Background(), cfg, []string{"Wine"}, []uncgen.Model{uncgen.Exponential}); err != nil {
		t.Errorf("table2: %v", err)
	}
	if _, err := experiments.Table3(context.Background(), cfg, []string{"Neuroblastoma"}, []int{3}); err != nil {
		t.Errorf("table3: %v", err)
	}
	if _, err := experiments.Fig4(context.Background(), cfg, []string{"Letter"}); err != nil {
		t.Errorf("fig4: %v", err)
	}
	if _, err := experiments.Fig5(context.Background(), experiments.Config{Seed: 2, Runs: 1, Scale: 0.0001}, []float64{1.0}); err != nil {
		t.Errorf("fig5: %v", err)
	}
}
