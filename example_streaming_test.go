package ucpc_test

import (
	"context"
	"fmt"

	"ucpc"
)

// Example_streaming fits a dataset it never holds in full: objects arrive
// in portions through StreamFit.Observe, and Snapshot freezes the current
// centroids as a regular Model whenever a serving copy is needed.
func Example_streaming() {
	ctx := context.Background()
	sc := &ucpc.StreamClusterer{Config: ucpc.StreamConfig{BatchSize: 64, Seed: 42}}
	fit, err := sc.Begin(ctx, 2)
	if err != nil {
		panic(err)
	}

	// The producer side: batches of uncertain objects around two sites.
	r := ucpc.NewRNG(3)
	for batch := 0; batch < 10; batch++ {
		objs := make(ucpc.Dataset, 64)
		for i := range objs {
			c := []float64{0, 0}
			if i%2 == 1 {
				c = []float64{9, 9}
			}
			c[0] += r.Normal(0, 0.4)
			c[1] += r.Normal(0, 0.4)
			objs[i] = ucpc.NewNormalObject(i, c, []float64{0.3, 0.3}, 0.95)
		}
		if err := fit.Observe(ctx, objs); err != nil {
			panic(err)
		}
	}

	// Freeze a model and serve assignments from it; the stream could keep
	// flowing in the background.
	model, err := fit.Snapshot()
	if err != nil {
		panic(err)
	}
	probes := ucpc.Dataset{
		ucpc.NewNormalObject(0, []float64{0.5, -0.5}, []float64{0.2, 0.2}, 0.95),
		ucpc.NewNormalObject(1, []float64{8.5, 9.5}, []float64{0.2, 0.2}, 0.95),
	}
	ids, err := model.Assign(ctx, probes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("observed %d objects in %d mini-batches\n", fit.Seen(), fit.Batches())
	fmt.Printf("probes in same cluster: %v\n", ids[0] == ids[1])
	sizes := model.Centroids()
	fmt.Printf("cluster sizes: %d + %d = %d\n", sizes[0].Size, sizes[1].Size, sizes[0].Size+sizes[1].Size)
	// Output:
	// observed 640 objects in 10 mini-batches
	// probes in same cluster: false
	// cluster sizes: 320 + 320 = 640
}
