package ucpc_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"ucpc"
	"ucpc/internal/persist"
)

// fitModel fits twoBlobs with the named algorithm and returns the model.
func fitModel(t testing.TB, algorithm string) *ucpc.Model {
	t.Helper()
	c := ucpc.Clusterer{Algorithm: algorithm, Config: ucpc.Config{Seed: 11}}
	m, err := c.Fit(context.Background(), twoBlobs(), 2)
	if err != nil {
		t.Fatalf("%s: %v", algorithm, err)
	}
	return m
}

// TestModelWireRoundTrip marshals a fitted model of every registered
// algorithm, unmarshals it, and checks (a) the decoded model serves the
// same assignments and exposes the same centroids, and (b) re-encoding is
// byte-identical — the determinism contract of the wire format.
func TestModelWireRoundTrip(t *testing.T) {
	ds := twoBlobs()
	for _, name := range ucpc.AlgorithmNames() {
		m := fitModel(t, name)
		enc, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got ucpc.Model
		if err := got.UnmarshalBinary(enc); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if got.Algorithm() != m.Algorithm() || got.K() != m.K() || got.Dims() != m.Dims() {
			t.Fatalf("%s: decoded identity %s/%d/%d, want %s/%d/%d", name,
				got.Algorithm(), got.K(), got.Dims(), m.Algorithm(), m.K(), m.Dims())
		}
		reenc, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(enc, reenc) {
			t.Fatalf("%s: re-encoded payload differs from original (%d vs %d bytes)",
				name, len(reenc), len(enc))
		}
		wantCents, gotCents := m.Centroids(), got.Centroids()
		if len(wantCents) != len(gotCents) {
			t.Fatalf("%s: %d centroids decoded, want %d", name, len(gotCents), len(wantCents))
		}
		for c := range wantCents {
			for j := range wantCents[c].Mean {
				if gotCents[c].Mean[j] != wantCents[c].Mean[j] {
					t.Fatalf("%s: centroid %d mean differs after round trip", name, c)
				}
			}
		}
		wantAsg, err := m.Assign(context.Background(), ds)
		if err != nil {
			t.Fatalf("%s: assign original: %v", name, err)
		}
		gotAsg, err := got.Assign(context.Background(), ds)
		if err != nil {
			t.Fatalf("%s: assign decoded: %v", name, err)
		}
		for i := range wantAsg {
			if gotAsg[i] != wantAsg[i] {
				t.Fatalf("%s: object %d assigned to %d by the decoded model, %d by the original",
					name, i, gotAsg[i], wantAsg[i])
			}
		}
	}
}

// TestSaveLoadModel drives the io.Writer/io.Reader persistence layer over
// the same round-trip contract.
func TestSaveLoadModel(t *testing.T) {
	m := fitModel(t, "UCPC")
	var buf bytes.Buffer
	if err := ucpc.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	got, err := ucpc.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, reenc) {
		t.Fatal("LoadModel(SaveModel(m)) re-encodes differently")
	}
	if err := ucpc.SaveModel(&buf, nil); !errors.Is(err, ucpc.ErrBadModelFormat) {
		t.Fatalf("SaveModel(nil) = %v, want ErrBadModelFormat", err)
	}
	if _, err := ucpc.LoadModel(strings.NewReader("")); !errors.Is(err, ucpc.ErrBadModelFormat) {
		t.Fatalf("LoadModel(empty) = %v, want ErrBadModelFormat", err)
	}
}

// TestStreamSnapshotRoundTrip checks that a stream snapshot — whose
// objective is NaN-free but whose memberless clusters carry +Inf adds —
// survives the wire format, including warm-starting a new stream from the
// loaded copy.
func TestStreamSnapshotRoundTrip(t *testing.T) {
	sc := ucpc.StreamClusterer{Config: ucpc.StreamConfig{BatchSize: 16, Seed: 3}}
	fit, err := sc.Begin(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fit.Observe(context.Background(), twoBlobs()); err != nil {
		t.Fatal(err)
	}
	m, err := fit.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ucpc.Model
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.BeginFrom(context.Background(), &got); err != nil {
		t.Fatalf("warm start from decoded snapshot: %v", err)
	}
}

// corruptAt returns a copy of enc with the byte at off overwritten.
func corruptAt(enc []byte, off int, b byte) []byte {
	out := append([]byte(nil), enc...)
	out[off] = b
	return out
}

// TestModelWireRejects feeds the decoder malformed payloads and checks
// each is rejected with the right sentinel — never a panic, never a
// silently wrong model.
func TestModelWireRejects(t *testing.T) {
	enc, err := fitModel(t, "UCPC").MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	algLen := int(enc[8])
	shapeOff := 9 + algLen
	oversized := corruptAt(enc, shapeOff+3, 0xFF) // k |= 0xFF<<24

	nanMean := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(nanMean[shapeOff+36:], math.Float64bits(math.NaN()))

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ucpc.ErrBadModelFormat},
		{"truncated header", enc[:8], ucpc.ErrBadModelFormat},
		{"truncated body", enc[:len(enc)-1], ucpc.ErrBadModelFormat},
		{"trailing byte", append(append([]byte(nil), enc...), 0), ucpc.ErrBadModelFormat},
		{"bad magic", corruptAt(enc, 0, 'X'), ucpc.ErrBadModelFormat},
		{"future version", corruptAt(enc, 4, 99), ucpc.ErrModelVersion},
		{"unknown flag", corruptAt(enc, 5, 0x80), ucpc.ErrBadModelFormat},
		{"unknown prototype", corruptAt(enc, 6, 9), ucpc.ErrBadModelFormat},
		{"medoid flag without medoids", corruptAt(enc, 6, 3), ucpc.ErrBadModelFormat},
		{"unknown pruning", corruptAt(enc, 7, 7), ucpc.ErrBadModelFormat},
		{"oversized k", oversized, ucpc.ErrBadModelFormat},
		{"NaN mean", nanMean, ucpc.ErrBadModelFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m ucpc.Model
			if err := m.UnmarshalBinary(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("UnmarshalBinary = %v, want %v", err, tc.want)
			}
		})
	}
}

// FuzzUnmarshalModel hammers the decoder with mutated payloads: it must
// never panic, never allocate past the input-implied bound, and every
// payload it accepts must re-encode byte-identically (decode∘encode is the
// identity on the accepted set).
func FuzzUnmarshalModel(f *testing.F) {
	for _, name := range []string{"UCPC", "UKmed"} {
		m := fitModel(f, name)
		enc, err := m.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:9])
		f.Add(corruptAt(enc, 4, 2))
		// On-disk snapshot frames: the daemon persists models inside
		// internal/persist's CRC-framed container. Seed the decoder with the
		// framed bytes (the 18-byte frame header must read as a bad magic,
		// not a panic) and with the frame's payload region alone.
		frame := persist.EncodeFrame(persist.KindModel, enc)
		f.Add(frame)
		f.Add(frame[18:])
		f.Add(frame[:18])
	}
	f.Add([]byte("UCPM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ucpc.Model
		if err := m.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, ucpc.ErrBadModelFormat) && !errors.Is(err, ucpc.ErrModelVersion) {
				t.Fatalf("rejection %v is not a typed wire error", err)
			}
			return
		}
		reenc, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted payload cannot re-encode: %v", err)
		}
		if !bytes.Equal(data, reenc) {
			t.Fatalf("accepted payload re-encodes differently (%d vs %d bytes)", len(reenc), len(data))
		}
	})
}
