// Command daemon demonstrates the clustering-as-a-service loop end to end:
// boot the ucpcd engine (internal/serve, the same server cmd/ucpcd wraps) on
// a loopback listener, then talk to it purely over HTTP/JSON — create a
// tenant, stream uncertain objects through the bounded ingestion queue,
// freeze a serving model, and hot-swap a refreshed model while assign
// requests are in flight. The swap is one atomic pointer store inside the
// daemon: the in-flight assigns all succeed, some answered by the old model
// version and some by the new.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucpc/internal/serve"
)

// reading renders one batch of noisy 2-D sensor readings as the daemon's
// JSON object payload: per-dimension uncertain marginals in the ucsv token
// grammar ("U:lo:hi" here — uniform error boxes around each position).
func readings(n, phase int) string {
	var b strings.Builder
	b.WriteString(`{"objects":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		g := i % 3
		x := 12.0 * float64(g)
		y := 8.0 * float64(g%2)
		// Phase 2 relocates group 2 — the refreshed model must follow it.
		if phase == 2 && g == 2 {
			x += 6
		}
		j := 0.3 * float64(i%7)
		fmt.Fprintf(&b, `{"marginals":["U:%.2f:%.2f","U:%.2f:%.2f"]}`,
			x+j-0.5, x+j+0.5, y-j-0.5, y-j+0.5)
	}
	b.WriteString("]}")
	return b.String()
}

func main() {
	// Boot the daemon on an ephemeral loopback port. cmd/ucpcd does exactly
	// this behind its flags; embedding the server keeps the example
	// self-contained.
	srv, err := serve.New(serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("daemon up on %s\n", l.Addr())

	call := func(method, path, body string) (int, []byte) {
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	must := func(method, path, body string, want int) []byte {
		status, raw := call(method, path, body)
		if status != want {
			log.Fatalf("%s %s: status %d, want %d (%s)", method, path, status, want, raw)
		}
		return raw
	}

	// One tenant: three clusters over the sensor fleet.
	must("POST", "/v1/tenants", `{"id":"fleet","k":3,"seed":7}`, 201)

	// Stream phase-1 readings through the ingestion queue, then wait for the
	// ingester to fold them in.
	for batch := 0; batch < 6; batch++ {
		must("POST", "/v1/tenants/fleet/observe", readings(300, 1), 202)
	}
	for {
		var info struct {
			Ingested int64 `json:"ingested_objects"`
		}
		if err := json.Unmarshal(must("GET", "/v1/tenants/fleet", "", 200), &info); err != nil {
			log.Fatal(err)
		}
		if info.Ingested >= 6*300 {
			fmt.Printf("streamed %d objects through the bounded queue\n", info.Ingested)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Freeze the first serving model.
	must("POST", "/v1/tenants/fleet/snapshot", "", 200)
	fmt.Println("model v1 installed — serving")

	// Serve assigns concurrently while the hot swap happens underneath.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		served   atomic.Int64
		versions sync.Map
	)
	probe := readings(12, 1)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, raw := call("POST", "/v1/tenants/fleet/assign", probe)
				if status != 200 {
					log.Fatalf("assign failed mid-swap: status %d (%s)", status, raw)
				}
				var resp struct {
					ModelVersion int64 `json:"model_version"`
				}
				if json.Unmarshal(raw, &resp) == nil {
					versions.Store(resp.ModelVersion, true)
				}
				served.Add(1)
			}
		}()
	}

	// Phase 2: group 2 relocates. Stream the new readings and snapshot —
	// the hot swap — while the assign workers above keep hammering.
	for batch := 0; batch < 6; batch++ {
		must("POST", "/v1/tenants/fleet/observe", readings(300, 2), 202)
	}
	for {
		var info struct {
			Ingested int64 `json:"ingested_objects"`
		}
		json.Unmarshal(must("GET", "/v1/tenants/fleet", "", 200), &info)
		if info.Ingested >= 12*300 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	must("POST", "/v1/tenants/fleet/snapshot", "", 200)
	time.Sleep(100 * time.Millisecond) // let the workers see v2
	close(stop)
	wg.Wait()

	var seen []int64
	versions.Range(func(k, _ any) bool { seen = append(seen, k.(int64)); return true })
	fmt.Printf("hot swap under load: %d assigns served, model versions seen: %d\n",
		served.Load(), len(seen))
	if served.Load() == 0 || len(seen) < 2 {
		log.Fatalf("expected assigns across both model versions (served %d, versions %d)",
			served.Load(), len(seen))
	}

	// The fleet's /metrics view: requests, swaps, and the ingest counters.
	metrics := string(must("GET", "/metrics", "", 200))
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "ucpcd_requests_total") ||
			strings.HasPrefix(line, "ucpcd_swaps_total") ||
			strings.HasPrefix(line, "ucpcd_ingested_objects_total") {
			fmt.Println("metrics:", line)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	<-done
	fmt.Println("daemon drained and stopped")
}
