// Command sharded demonstrates the distributed fit workflow: a
// shard-parallel fit over mergeable sufficient statistics
// (ucpc.ShardedClusterer), folding in a simulated out-of-process shard
// through the versioned WStats wire format (StreamFit.ExportStats →
// ShardedFit.AddRemoteStats), and persisting the merged model with
// ucpc.SaveModel / ucpc.LoadModel.
//
// The scenario: three ingest sites observe uncertain 2-D readings from the
// same five emitters. Two sites stream into a local sharded fit; the third
// runs its own independent stream fit and ships only its statistics —
// 13 + 8·k·(m+3) bytes, never the objects — to the coordinator. The merged
// model is saved, reloaded, and used to serve assignments.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ucpc"
)

// emitters are the five ground-truth sites all ingest locations observe.
var emitters = [][]float64{
	{0, 0}, {12, 0}, {0, 12}, {12, 12}, {6, 6},
}

// readings synthesizes n uncertain readings around the emitters.
func readings(r *ucpc.RNG, n int) ucpc.Dataset {
	ds := make(ucpc.Dataset, 0, n)
	for i := 0; i < n; i++ {
		e := emitters[r.Intn(len(emitters))]
		mu := []float64{e[0] + r.Normal(0, 0.8), e[1] + r.Normal(0, 0.8)}
		ds = append(ds, ucpc.NewNormalObject(i, mu, []float64{0.3, 0.3}, 0.95))
	}
	return ds
}

func main() {
	ctx := context.Background()
	const k = 5

	// The local coordinator: two shards ingesting concurrently.
	sc := ucpc.ShardedClusterer{
		Config: ucpc.StreamConfig{BatchSize: 512, Seed: 42},
		Shards: 2,
	}
	fit, err := sc.Begin(ctx, k)
	if err != nil {
		log.Fatal(err)
	}
	local := ucpc.NewRNG(7)
	for round := 0; round < 8; round++ {
		if err := fit.Observe(ctx, readings(local, 2048)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("local shards: %d engines, %d objects, %d mini-batches\n",
		fit.Shards(), fit.Seen(), fit.Batches())

	// The remote site: an independent single-engine stream fit whose
	// statistics — not its objects — are shipped to the coordinator.
	remote, err := (&ucpc.StreamClusterer{
		Config: ucpc.StreamConfig{BatchSize: 512, Seed: 42},
	}).Begin(ctx, k)
	if err != nil {
		log.Fatal(err)
	}
	rsrc := ucpc.NewRNG(99)
	for round := 0; round < 4; round++ {
		if err := remote.Observe(ctx, readings(rsrc, 2048)); err != nil {
			log.Fatal(err)
		}
	}
	payload, err := remote.ExportStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote site:  %d objects exported as %d bytes of statistics\n",
		remote.Seen(), len(payload))
	if err := fit.AddRemoteStats(payload); err != nil {
		log.Fatal(err)
	}

	// Snapshot the merged model and persist it.
	model, err := fit.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ucpc.SaveModel(&buf, model); err != nil {
		log.Fatal(err)
	}
	artifactLen := buf.Len()
	loaded, err := ucpc.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged model: %d clusters over %d objects, %d-byte artifact\n",
		loaded.K(), int(fit.Seen())+int(remote.Seen()), artifactLen)

	// Serve from the reloaded model: probe one reading near each emitter.
	probes := make(ucpc.Dataset, 0, len(emitters))
	for i, e := range emitters {
		probes = append(probes, ucpc.NewNormalObject(i, []float64{e[0], e[1]}, []float64{0.3, 0.3}, 0.95))
	}
	ids, err := loaded.Assign(ctx, probes)
	if err != nil {
		log.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, c := range ids {
		distinct[c] = true
	}
	fmt.Printf("serving:      %d emitter probes land in %d distinct clusters\n",
		len(probes), len(distinct))
}
