// Quickstart: build a handful of uncertain objects by hand, fit UCPC once,
// inspect the U-centroids of the resulting clusters, and assign a fresh
// object to the fitted model without re-clustering.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"ucpc"
)

func main() {
	// Six 2-D uncertain objects: two tight groups with different
	// uncertainty shapes (Normal, Uniform, Exponential marginals).
	objects := ucpc.Dataset{
		ucpc.NewNormalObject(0, []float64{1.0, 1.2}, []float64{0.2, 0.3}, 0.95),
		ucpc.NewUniformObject(1, []float64{0.8, 0.9}, []float64{0.6, 0.4}),
		ucpc.NewObject(2, []ucpc.Distribution{
			ucpc.ExponentialDist(1.1, 3, 0.95), // right-skewed x
			ucpc.NormalDist(1.0, 0.25, 0.95),
		}),
		ucpc.NewNormalObject(3, []float64{8.0, 7.5}, []float64{0.3, 0.2}, 0.95),
		ucpc.NewUniformObject(4, []float64{8.4, 8.1}, []float64{0.5, 0.5}),
		ucpc.NewNormalObject(5, []float64{7.7, 8.3}, []float64{0.4, 0.4}, 0.95),
	}

	// Fit once; the model freezes the learned U-centroids for serving.
	ctx := context.Background()
	clusterer := &ucpc.Clusterer{Algorithm: "UCPC", Config: ucpc.Config{Seed: 42}}
	model, err := clusterer.Fit(ctx, objects, 2)
	if err != nil {
		panic(err)
	}
	report := model.Report()

	fmt.Printf("UCPC converged in %d iterations (objective %.4f)\n\n",
		report.Iterations, report.Objective)
	for i, c := range report.Partition.Assign {
		o := objects[i]
		fmt.Printf("object %d  mean=(%.2f, %.2f)  σ²=%.3f  -> cluster %d\n",
			o.ID, o.Mean()[0], o.Mean()[1], o.TotalVar(), c)
	}

	// The U-centroid of each cluster is itself an uncertain object
	// (paper Theorem 1); its region, mean and variance are closed forms.
	fmt.Println()
	for c, members := range report.Partition.Members() {
		var objs []*ucpc.Object
		for _, i := range members {
			objs = append(objs, objects[i])
		}
		u := ucpc.NewUCentroid(objs)
		reg := u.Region()
		fmt.Printf("cluster %d U-centroid: mean=(%.2f, %.2f)  σ²=%.4f  region=[%.2f,%.2f]×[%.2f,%.2f]\n",
			c, u.Mean()[0], u.Mean()[1], u.TotalVar(),
			reg.Lo[0], reg.Hi[0], reg.Lo[1], reg.Hi[1])

		// Draw a few realizations of the centroid's random variable X_C̄.
		r := ucpc.NewRNG(7)
		for t := 0; t < 3; t++ {
			x := u.SampleRealization(r)
			fmt.Printf("  realization %d: (%.3f, %.3f)\n", t, x[0], x[1])
		}
	}

	// Serving: score a fresh uncertain measurement against the frozen
	// U-centroids (expected-distance scoring, no refit).
	fresh := ucpc.Dataset{ucpc.NewNormalObject(6, []float64{7.9, 7.8}, []float64{0.3, 0.3}, 0.95)}
	ids, err := model.Assign(ctx, fresh)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfresh object mean=(%.1f, %.1f) -> cluster %d\n",
		fresh[0].Mean()[0], fresh[0].Mean()[1], ids[0])
}
