// Sensors: the paper's first motivating scenario (§1) — sensor
// measurements "imprecise at a certain degree due to the presence of
// various noisy factors (signal noise, instrumental errors, wireless
// transmission)".
//
// A field of sensors monitors temperature/humidity in three overlapping
// climate zones. Every sensor streams a handful of noisy readings. Two ways
// to cluster the field:
//
//   - Case 1 (deterministic): keep only the latest reading per sensor and
//     cluster the points — the noise is baked in and invisible.
//   - Case 2 (uncertain): represent each sensor as an uncertain object
//     whose per-channel pdf summarizes its reading stream (mean = running
//     average, σ = observed dispersion), and cluster the objects.
//
// The F-measure gain Θ = F(case2) − F(case1) is the paper's §5.1 criterion.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"math"

	"ucpc"
)

const (
	zones          = 3
	sensorsPerZone = 40
	readings       = 6
)

func main() {
	r := ucpc.NewRNG(2024)

	// True zone conditions (temperature °C, humidity %); adjacent zones
	// overlap once measurement noise is added.
	zoneTemp := []float64{18, 23, 28}
	zoneHum := []float64{40, 50, 60}

	var latest ucpc.Dataset  // Case 1: one noisy point per sensor
	var modeled ucpc.Dataset // Case 2: pdf summarizing the reading stream
	var labels []int

	id := 0
	for z := 0; z < zones; z++ {
		for s := 0; s < sensorsPerZone; s++ {
			trueTemp := zoneTemp[z] + r.Normal(0, 0.6)
			trueHum := zoneHum[z] + r.Normal(0, 1.5)

			// Sensor quality: per-channel noise σ; a minority of
			// sensors are badly degraded.
			quality := r.Float64()
			sigmaT := 0.5 + 4.0*quality*quality
			sigmaH := 1.0 + 10.0*quality*quality

			// The sensor streams `readings` noisy samples.
			var sumT, sumH, sqT, sqH, lastT, lastH float64
			for t := 0; t < readings; t++ {
				lastT = trueTemp + r.Normal(0, sigmaT)
				lastH = trueHum + r.Normal(0, sigmaH)
				sumT += lastT
				sumH += lastH
				sqT += lastT * lastT
				sqH += lastH * lastH
			}

			// Case 1: the latest raw reading.
			latest = append(latest, ucpc.NewPointObject(id, []float64{lastT, lastH}))

			// Case 2: pdf per channel from the stream statistics.
			meanT, meanH := sumT/readings, sumH/readings
			stdT := math.Sqrt(math.Max(sqT/readings-meanT*meanT, 0.01))
			stdH := math.Sqrt(math.Max(sqH/readings-meanH*meanH, 0.01))
			modeled = append(modeled, ucpc.NewNormalObject(id,
				[]float64{meanT, meanH}, []float64{stdT, stdH}, 0.95))

			labels = append(labels, z)
			id++
		}
	}

	fmt.Printf("%d sensors × %d readings in %d zones; clustering with UCPC\n\n",
		id, readings, zones)
	var fCase1, fCase2 float64
	const runs = 10
	for seed := uint64(1); seed <= runs; seed++ {
		rep1, err := ucpc.Cluster(latest, zones, ucpc.Options{Seed: seed})
		if err != nil {
			panic(err)
		}
		rep2, err := ucpc.Cluster(modeled, zones, ucpc.Options{Seed: seed})
		if err != nil {
			panic(err)
		}
		fCase1 += ucpc.FMeasure(rep1.Partition, labels) / runs
		fCase2 += ucpc.FMeasure(rep2.Partition, labels) / runs
	}

	fmt.Printf("Case 1 (latest raw reading):      F = %.4f\n", fCase1)
	fmt.Printf("Case 2 (uncertainty modeled):     F = %.4f\n", fCase2)
	fmt.Printf("Θ (gain from modeling the noise): %+.4f\n", fCase2-fCase1)
}
