// Movers: the paper's second motivating scenario (§1) — moving objects
// "continuously change their location so that the exact positional
// information at a given time can only be estimated" (data staleness).
//
// A fleet of vehicles reports GPS positions with a communication latency.
// The longer the latency, the further the vehicle may have drifted, so the
// positional uncertainty grows with staleness: the last known position is
// the pdf's center and the drift radius scales with elapsed time. We
// cluster the fleet into service areas with UCPC and compare against
// UK-means, which ignores per-object uncertainty entirely.
//
// Run with:
//
//	go run ./examples/movers
package main

import (
	"fmt"

	"ucpc"
)

const (
	areas           = 4
	vehiclesPerArea = 30
	speed           = 0.6 // drift per unit of staleness
)

func main() {
	r := ucpc.NewRNG(99)

	areaCenters := [][2]float64{{0, 0}, {20, 2}, {3, 22}, {21, 24}}

	var fleet ucpc.Dataset
	var labels []int
	id := 0
	for a := 0; a < areas; a++ {
		for v := 0; v < vehiclesPerArea; v++ {
			// True position inside the service area.
			x := areaCenters[a][0] + r.Normal(0, 2)
			y := areaCenters[a][1] + r.Normal(0, 2)
			// Staleness: time since last position report (exponential).
			staleness := r.Exponential(0.8)
			drift := speed * staleness
			// The vehicle may have moved since the report: last known
			// position + drift-scaled uniform uncertainty box.
			lastX := x + r.Normal(0, drift/2)
			lastY := y + r.Normal(0, drift/2)
			fleet = append(fleet, ucpc.NewUniformObject(id,
				[]float64{lastX, lastY},
				[]float64{1 + 2*drift, 1 + 2*drift}))
			labels = append(labels, a)
			id++
		}
	}

	fmt.Printf("%d vehicles, %d service areas, staleness-scaled uncertainty\n\n", id, areas)
	const runs = 10
	for _, alg := range []string{"UCPC", "UKM", "MMV"} {
		var f, q float64
		for seed := uint64(1); seed <= runs; seed++ {
			rep, err := ucpc.Cluster(fleet, areas, ucpc.Options{Algorithm: alg, Seed: seed})
			if err != nil {
				panic(err)
			}
			f += ucpc.FMeasure(rep.Partition, labels) / runs
			q += ucpc.Quality(fleet, rep.Partition) / runs
		}
		fmt.Printf("%-5s  F = %.4f   Q = %+.4f\n", alg, f, q)
	}
}
