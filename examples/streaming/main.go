// Command streaming demonstrates the out-of-core mini-batch path: fit a
// stream of uncertain objects that is never resident in full, snapshot the
// model mid-stream, and serve assignments from snapshots while the stream
// keeps flowing — the ucpc.StreamClusterer / StreamFit / Snapshot workflow.
//
// The stream simulates a sensor fleet whose readings drift: four emitters
// report noisy 2-D positions with per-reading error bars, and halfway
// through the run one emitter relocates. A decayed stream fit follows the
// move; a cumulative fit averages it away.
package main

import (
	"context"
	"fmt"
	"log"

	"ucpc"
)

// emit returns one batch of n uncertain readings around 4 emitters, with
// emitter 3 displaced by drift.
func emit(r *ucpc.RNG, n int, drift float64) ucpc.Dataset {
	ds := make(ucpc.Dataset, 0, n)
	for i := 0; i < n; i++ {
		g := i % 4
		c := []float64{10 * float64(g%2), 10 * float64(g/2)}
		if g == 3 {
			c[0] += drift
		}
		c[0] += r.Normal(0, 0.5)
		c[1] += r.Normal(0, 0.5)
		ds = append(ds, ucpc.NewNormalObject(i, c, []float64{0.3, 0.3}, 0.95))
	}
	return ds
}

func run(cfg ucpc.StreamConfig, label string) error {
	ctx := context.Background()
	sf, err := (&ucpc.StreamClusterer{Config: cfg}).Begin(ctx, 4)
	if err != nil {
		return err
	}
	r := ucpc.NewRNG(7)
	// Phase 1: 40 batches from the home positions.
	for b := 0; b < 40; b++ {
		if err := sf.Observe(ctx, emit(r, 256, 0)); err != nil {
			return err
		}
	}
	mid, err := sf.Snapshot()
	if err != nil {
		return err
	}
	// Phase 2: emitter 3 relocates by +6 in x; the stream keeps flowing.
	for b := 0; b < 40; b++ {
		if err := sf.Observe(ctx, emit(r, 256, 6)); err != nil {
			return err
		}
	}
	final, err := sf.Snapshot()
	if err != nil {
		return err
	}

	// Where does each model place emitter 3's centroid?
	x := func(m *ucpc.Model) float64 {
		best, bx := 0, 0.0
		for c, ct := range m.Centroids() {
			// Emitter 3 lives near (10+drift, 10): the centroid with the
			// largest x among the high-y pair.
			if ct.Mean[1] > 5 && ct.Mean[0] > bx {
				best, bx = c, ct.Mean[0]
			}
		}
		return m.Centroids()[best].Mean[0]
	}
	fmt.Printf("%-28s observed %6d objects in %3d batches, resident %5.1f KiB\n",
		label, sf.Seen(), sf.Batches(), float64(sf.ResidentBytes())/1024)
	fmt.Printf("%-28s emitter-3 centroid x: mid-stream %5.2f, final %5.2f\n",
		label, x(mid), x(final))
	return nil
}

func main() {
	// Cumulative statistics (Decay 0): the final centroid averages the two
	// emitter positions. Decayed statistics: the final centroid tracks the
	// relocated emitter.
	if err := run(ucpc.StreamConfig{BatchSize: 256, Seed: 11}, "cumulative (Decay 0):"); err != nil {
		log.Fatal(err)
	}
	if err := run(ucpc.StreamConfig{BatchSize: 256, Decay: 0.2, Seed: 11}, "forgetting (Decay 0.2):"); err != nil {
		log.Fatal(err)
	}
}
