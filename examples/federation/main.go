// Command federation demonstrates the durable edge→coordinator loop: two
// edge daemons ingest disjoint halves of a sensor stream and push their
// mergeable UCWS statistics to one coordinator daemon, which serves a
// globally merged model it never saw raw data for. Edge 0 runs with a
// crash-safe state directory and is restarted mid-run — its graceful stop
// takes a final snapshot after the ingestion queue drains, the restart
// restores the tenant (model, engine warm start, ingested offset) from
// disk, and the federation push loop resumes where it left off.
//
// Both edges bootstrap from the same seed window with the same seed, so
// their engines derive identical initial centroids: cluster indices then
// correspond across edges, and the coordinator's keyed merge (every push
// replaces that source's previous statistics) sums per-cluster statistics
// that describe the same cluster — re-pushed cumulative stats are counted
// exactly once, no matter how often the loop re-ships them.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ucpc/internal/serve"
)

// readings renders one batch of noisy 2-D sensor readings as the daemon's
// JSON object payload ("U:lo:hi" uniform error boxes), phase-shifted by
// offset so the stream keeps moving through the three groups.
func readings(n, offset int) string {
	var b strings.Builder
	b.WriteString(`{"objects":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		g := (offset + i) % 3
		x := 12.0 * float64(g)
		y := 8.0 * float64(g%2)
		j := 0.3 * float64((offset+i)%7)
		fmt.Fprintf(&b, `{"marginals":["U:%.2f:%.2f","U:%.2f:%.2f"]}`,
			x+j-0.5, x+j+0.5, y-j-0.5, y-j+0.5)
	}
	b.WriteString("]}")
	return b.String()
}

// daemon is one in-process ucpcd engine on a loopback listener.
type daemon struct {
	srv  *serve.Server
	base string
	done chan error
}

func boot(cfg serve.Config) *daemon {
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	d := &daemon{srv: srv, base: "http://" + l.Addr().String(), done: make(chan error, 1)}
	go func() { d.done <- srv.Serve(l) }()
	return d
}

func (d *daemon) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	<-d.done
}

func call(method, url, body string) (int, []byte) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func must(method, url, body string, want int) []byte {
	status, raw := call(method, url, body)
	if status != want {
		log.Fatalf("%s %s: status %d, want %d (%s)", method, url, status, want, raw)
	}
	return raw
}

// tenantNum polls the tenant until field >= want, returning the last value.
func tenantNum(base, field string, want int64) int64 {
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info map[string]any
		if err := json.Unmarshal(must("GET", base+"/v1/tenants/grid", "", 200), &info); err != nil {
			log.Fatal(err)
		}
		v, _ := info[field].(float64)
		if int64(v) >= want {
			return int64(v)
		}
		if time.Now().After(deadline) {
			log.Fatalf("tenant %s stuck at %v, want >= %d", field, v, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func main() {
	// The coordinator: a sharded tenant that only ever sees statistics.
	coord := boot(serve.Config{})
	defer coord.stop()
	must("POST", coord.base+"/v1/tenants", `{"id":"grid","k":3,"seed":7,"shards":1}`, 201)
	fmt.Println("coordinator up — tenant \"grid\" accepts keyed statistics pushes")

	// Edge 0 is the durable one: crash-safe state directory, restarted
	// mid-run. Edge 1 runs stateless alongside.
	stateDir, err := os.MkdirTemp("", "ucpc-federation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	edgeCfg := func(source string, dir string) serve.Config {
		return serve.Config{
			StateDir:     dir,
			PushTo:       coord.base,
			PushInterval: 25 * time.Millisecond,
			PushTimeout:  2 * time.Second,
			PushSource:   source,
		}
	}
	edge0 := boot(edgeCfg("edge0", stateDir))
	edge1 := boot(edgeCfg("edge1", ""))
	defer edge1.stop()

	// Same spec, same seed, same bootstrap window on both edges: identical
	// initial centroids make the merge cluster-aligned.
	const spec = `{"id":"grid","k":3,"seed":7,"batch_size":256}`
	must("POST", edge0.base+"/v1/tenants", spec, 201)
	must("POST", edge1.base+"/v1/tenants", spec, 201)
	boot0 := readings(400, 0)
	must("POST", edge0.base+"/v1/tenants/grid/observe", boot0, 202)
	must("POST", edge1.base+"/v1/tenants/grid/observe", boot0, 202)

	// Round 1: disjoint slices of the stream, pushed as they ingest.
	for batch := 0; batch < 4; batch++ {
		must("POST", edge0.base+"/v1/tenants/grid/observe", readings(300, 400+2*batch*300), 202)
		must("POST", edge1.base+"/v1/tenants/grid/observe", readings(300, 400+(2*batch+1)*300), 202)
	}
	const round1 = 400 + 4*300
	tenantNum(edge0.base, "ingested_objects", round1)
	tenantNum(edge1.base, "ingested_objects", round1)
	tenantNum(edge0.base, "last_push_seen", round1)
	tenantNum(edge1.base, "last_push_seen", round1)
	fmt.Printf("round 1: both edges ingested %d objects and pushed their full view\n", round1)

	// Restart edge 0 mid-run. The graceful stop persists a final snapshot
	// after the ingestion queue drains; the restart restores the tenant
	// from disk and the push loop resumes under the same source key.
	edge0.stop()
	fmt.Println("edge0 stopped — final snapshot taken after queue drain")
	edge0 = boot(edgeCfg("edge0", stateDir))
	defer edge0.stop()
	restored := tenantNum(edge0.base, "ingested_objects", round1)
	fmt.Printf("edge0 restarted — tenant restored from disk, resuming from %d objects\n", restored)

	// Round 2: edge 1 never stopped; edge 0 continues from its restored
	// offset. Both must converge on the coordinator again.
	for batch := 0; batch < 2; batch++ {
		must("POST", edge0.base+"/v1/tenants/grid/observe", readings(300, 3000+2*batch*300), 202)
		must("POST", edge1.base+"/v1/tenants/grid/observe", readings(300, 3000+(2*batch+1)*300), 202)
	}
	const round2 = round1 + 2*300
	tenantNum(edge0.base, "last_push_seen", round2)
	tenantNum(edge1.base, "last_push_seen", round2)
	fmt.Printf("round 2: restarted pusher resumed — both edges pushed %d objects\n", round2)

	// The coordinator freezes a model merged purely from the two edges'
	// statistics and serves assigns from it.
	var info struct {
		ModelVersion int64 `json:"model_version"`
		ModelK       int   `json:"model_k"`
	}
	if err := json.Unmarshal(must("POST", coord.base+"/v1/tenants/grid/snapshot", "", 200), &info); err != nil {
		log.Fatal(err)
	}
	var assign struct {
		Assign []int `json:"assign"`
	}
	if err := json.Unmarshal(must("POST", coord.base+"/v1/tenants/grid/assign", readings(30, 0), 200), &assign); err != nil {
		log.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, c := range assign.Assign {
		distinct[c] = true
	}
	fmt.Printf("coordinator model v%d (k=%d) assigned %d probes across %d clusters without seeing raw data\n",
		info.ModelVersion, info.ModelK, len(assign.Assign), len(distinct))
	if len(assign.Assign) != 30 || len(distinct) < 2 {
		log.Fatalf("federated model did not separate the groups (%d labels, %d clusters)",
			len(assign.Assign), len(distinct))
	}
	fmt.Println("federation drained and stopped")
}
