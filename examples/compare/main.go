// Compare: run every implemented clustering algorithm on one
// benchmark-shaped dataset with synthetic uncertainty and print an
// accuracy/efficiency scoreboard — a one-dataset miniature of the paper's
// whole evaluation.
//
// Run with:
//
//	go run ./examples/compare [-dataset Glass] [-model N] [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"time"

	"ucpc"
	"ucpc/internal/datasets"
	"ucpc/internal/rng"
	"ucpc/internal/uncgen"
)

func main() {
	var (
		name  = flag.String("dataset", "Glass", "benchmark dataset name")
		model = flag.String("model", "N", "uncertainty model: U|N|E")
		scale = flag.Float64("scale", 0.5, "dataset scale fraction")
		seed  = flag.Uint64("seed", 3, "seed")
	)
	flag.Parse()

	spec, err := datasets.BenchmarkByName(*name)
	if err != nil {
		panic(err)
	}
	d := datasets.Generate(spec, *seed).Scale(*scale)

	var m uncgen.Model
	switch *model {
	case "U":
		m = uncgen.Uniform
	case "N":
		m = uncgen.Normal
	case "E":
		m = uncgen.Exponential
	default:
		panic("model must be U, N, or E")
	}
	set := (&uncgen.Generator{Model: m}).Assign(d, rng.New(*seed^0xc0))
	objs := set.Objects(d)

	fmt.Printf("%s-shaped dataset: %d objects × %d attrs, %d classes, %s uncertainty\n\n",
		spec.Name, len(objs), objs.Dims(), spec.Classes, m)
	fmt.Printf("%-10s %8s %9s %12s %6s\n", "algorithm", "F", "Q", "time", "iters")

	for _, alg := range ucpc.AlgorithmNames() {
		start := time.Now()
		rep, err := ucpc.Cluster(objs, spec.Classes, ucpc.Options{Algorithm: alg, Seed: *seed})
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		f := ucpc.FMeasure(rep.Partition, d.Labels)
		q := ucpc.Quality(objs, rep.Partition)
		fmt.Printf("%-10s %8.4f %+9.4f %12v %6d\n", alg, f, q, elapsed.Round(time.Microsecond), rep.Iterations)
	}
}
