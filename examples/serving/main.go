// Serving: the fit-once / assign-many workflow a server embeds — the
// ROADMAP's "heavy traffic" path. A model is trained once on a bounded
// budget (context timeout, per-iteration progress), then serves batches of
// fresh uncertain objects from many goroutines against the frozen
// U-centroids, and is periodically refreshed with a warm start (FitFrom)
// when enough new data has accumulated.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ucpc"
)

const (
	groups    = 4
	trainSize = 50 // objects per group in the training set
	batchSize = 64 // fresh objects per serving batch
	batches   = 8
)

// sensor synthesizes one uncertain object near its group center.
func sensor(r *ucpc.RNG, id, g int) *ucpc.Object {
	cx := []float64{25 * float64(g%2), 25 * float64(g/2)}
	center := []float64{cx[0] + r.Normal(0, 1.2), cx[1] + r.Normal(0, 1.2)}
	sigmas := []float64{0.3 + 0.4*r.Float64(), 0.3 + 0.4*r.Float64()}
	o := ucpc.NewNormalObject(id, center, sigmas, 0.95)
	o.Label = g
	return o
}

func main() {
	r := ucpc.NewRNG(99)
	var train ucpc.Dataset
	for g := 0; g < groups; g++ {
		for i := 0; i < trainSize; i++ {
			train = append(train, sensor(r, len(train), g))
		}
	}

	// Train under a wall-clock budget, streaming per-iteration progress.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	clusterer := &ucpc.Clusterer{
		Algorithm: "UCPC",
		Config: ucpc.Config{
			Seed: 7,
			Progress: func(ev ucpc.ProgressEvent) {
				fmt.Printf("  fit %s iter %d: objective %.3f, %d moves\n",
					ev.Algorithm, ev.Iteration, ev.Objective, ev.Moves)
			},
		},
	}
	model, err := clusterer.Fit(ctx, train, groups)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted %d clusters on %d objects (F=%.3f)\n\n",
		model.K(), len(train), ucpc.FMeasure(model.Partition(), train.Labels()))

	// Serve concurrent batches against the immutable model.
	var wg sync.WaitGroup
	correct := make([]int, batches)
	fresh := make([]ucpc.Dataset, batches)
	for b := range fresh {
		br := ucpc.NewRNG(uint64(1000 + b))
		for i := 0; i < batchSize; i++ {
			fresh[b] = append(fresh[b], sensor(br, i, br.Intn(groups)))
		}
	}
	// Map cluster ids to majority training labels once.
	clusterLabel := make(map[int]int)
	counts := make(map[[2]int]int)
	for i, c := range model.Partition().Assign {
		counts[[2]int{c, train[i].Label}]++
	}
	for key, n := range counts {
		if best, ok := clusterLabel[key[0]]; !ok || n > counts[[2]int{key[0], best}] {
			clusterLabel[key[0]] = key[1]
		}
	}
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			ids, err := model.Assign(ctx, fresh[b])
			if err != nil {
				panic(err)
			}
			for i, c := range ids {
				if clusterLabel[c] == fresh[b][i].Label {
					correct[b]++
				}
			}
		}(b)
	}
	wg.Wait()
	total, right := batches*batchSize, 0
	for _, c := range correct {
		right += c
	}
	fmt.Printf("served %d fresh objects across %d concurrent batches: %.1f%% routed to their true group\n\n",
		total, batches, 100*float64(right)/float64(total))

	// Periodic refresh: fold the served batches into the training set and
	// warm-start from the current model instead of refitting from scratch.
	grown := append(ucpc.Dataset{}, train...)
	for _, batch := range fresh {
		grown = append(grown, batch...)
	}
	for i, o := range grown {
		o.ID = i
	}
	refreshed, err := clusterer.FitFrom(ctx, model, grown)
	if err != nil {
		panic(err)
	}
	fmt.Printf("warm-started refresh on %d objects: %d iterations, F=%.3f\n",
		len(grown), refreshed.Report().Iterations,
		ucpc.FMeasure(refreshed.Partition(), grown.Labels()))
}
