// Microarray: the paper's biomedical scenario (§1, §5) — gene-expression
// data with probe-level uncertainty, "a key aspect that allows for a more
// expressive data representation and a more accurate processing".
//
// We synthesize a Leukaemia-shaped collection (genes × arrays, per-entry
// Normal error model mimicking multi-mgMOS output), cluster the genes into
// co-expression groups with each partitional algorithm, and score the
// groupings with the internal quality criterion Q — a miniature of the
// paper's Table 3.
//
// Run with:
//
//	go run ./examples/microarray
package main

import (
	"fmt"

	"ucpc"
	"ucpc/internal/datasets"
)

func main() {
	spec, err := datasets.MicroarrayByName("Leukaemia")
	if err != nil {
		panic(err)
	}
	// 2 % of the published 22,690 genes keeps the example instant.
	genes := datasets.GenerateMicroarray(spec, 0.02, 7)
	fmt.Printf("%s-shaped collection: %d genes × %d arrays (probe-level Normal uncertainty)\n\n",
		spec.Name, len(genes), genes.Dims())

	for _, k := range []int{2, 5, 10} {
		fmt.Printf("k = %d\n", k)
		for _, alg := range []string{"UCPC", "MMV", "UKM", "UKmed"} {
			var q float64
			const runs = 5
			for seed := uint64(1); seed <= runs; seed++ {
				rep, err := ucpc.Cluster(genes, k, ucpc.Options{Algorithm: alg, Seed: seed})
				if err != nil {
					panic(err)
				}
				q += ucpc.Quality(genes, rep.Partition) / runs
			}
			fmt.Printf("  %-6s Q = %+.4f\n", alg, q)
		}
	}

	// Probe-level variance is heterogeneous: show the spread.
	minVar, maxVar := genes[0].TotalVar(), genes[0].TotalVar()
	for _, g := range genes {
		if v := g.TotalVar(); v < minVar {
			minVar = v
		} else if v > maxVar {
			maxVar = v
		}
	}
	fmt.Printf("\nper-gene total variance ranges over [%.3f, %.3f] — the signal-dependent\n", minVar, maxVar)
	fmt.Println("error model gives every gene its own uncertainty footprint.")
}
