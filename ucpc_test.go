package ucpc_test

import (
	"math"
	"testing"

	"ucpc"
)

// twoBlobs builds two well-separated groups of uncertain objects.
func twoBlobs() ucpc.Dataset {
	r := ucpc.NewRNG(5)
	var ds ucpc.Dataset
	for g := 0; g < 2; g++ {
		for i := 0; i < 15; i++ {
			c := []float64{15 * float64(g), 15 * float64(g)}
			c[0] += r.Normal(0, 0.5)
			c[1] += r.Normal(0, 0.5)
			o := ucpc.NewNormalObject(g*15+i, c, []float64{0.3, 0.3}, 0.95)
			o.Label = g
			ds = append(ds, o)
		}
	}
	return ds
}

func TestClusterDefaultUCPC(t *testing.T) {
	ds := twoBlobs()
	rep, err := ucpc.Cluster(ds, 2, ucpc.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, len(ds))
	for i, o := range ds {
		labels[i] = o.Label
	}
	if f := ucpc.FMeasure(rep.Partition, labels); f != 1 {
		t.Errorf("F-measure = %v, want 1 on separated blobs", f)
	}
	if q := ucpc.Quality(ds, rep.Partition); q <= 0 {
		t.Errorf("Q = %v, want > 0", q)
	}
}

func TestClusterEveryAlgorithm(t *testing.T) {
	ds := twoBlobs()
	for _, name := range ucpc.AlgorithmNames() {
		rep, err := ucpc.Cluster(ds, 2, ucpc.Options{Algorithm: name, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Partition.Assign) != len(ds) {
			t.Fatalf("%s: %d assignments", name, len(rep.Partition.Assign))
		}
	}
}

func TestClusterUnknownAlgorithm(t *testing.T) {
	if _, err := ucpc.Cluster(twoBlobs(), 2, ucpc.Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestObjectConstructors(t *testing.T) {
	u := ucpc.NewUniformObject(0, []float64{1, 2}, []float64{2, 4})
	if u.Mean()[0] != 1 || u.Mean()[1] != 2 {
		t.Errorf("uniform object mean %v", u.Mean())
	}
	n := ucpc.NewNormalObject(1, []float64{3}, []float64{0.5}, 0.95)
	if math.Abs(n.Mean()[0]-3) > 1e-9 {
		t.Errorf("normal object mean %v", n.Mean())
	}
	p := ucpc.NewPointObject(2, []float64{7, 8})
	if !p.IsDeterministic() {
		t.Error("point object not deterministic")
	}
	mixed := ucpc.NewObject(3, []ucpc.Distribution{
		ucpc.UniformDist(0, 2),
		ucpc.NormalDist(5, 1, 0.95),
		ucpc.ExponentialDist(3, 2, 0.95),
		ucpc.PointDist(9),
	})
	want := []float64{1, 5, 3, 9}
	for j, w := range want {
		if math.Abs(mixed.Mean()[j]-w) > 1e-9 {
			t.Errorf("mixed dim %d mean %v, want %v", j, mixed.Mean()[j], w)
		}
	}
}

func TestDistanceHelpers(t *testing.T) {
	a := ucpc.NewPointObject(0, []float64{0, 0})
	b := ucpc.NewPointObject(1, []float64{3, 4})
	if d := ucpc.EED(a, b); d != 25 {
		t.Errorf("EED = %v", d)
	}
	if d := ucpc.ED(a, []float64{3, 4}); d != 25 {
		t.Errorf("ED = %v", d)
	}
}

func TestUCentroidFacade(t *testing.T) {
	ds := twoBlobs()
	u := ucpc.NewUCentroid(ds[:15])
	if u.Size() != 15 {
		t.Errorf("Size = %d", u.Size())
	}
	if u.TotalVar() <= 0 {
		t.Error("U-centroid without variance")
	}
	// Theorem 2: σ²(C̄) = |C|⁻²Σσ².
	var sum float64
	for _, o := range ds[:15] {
		sum += o.TotalVar()
	}
	if want := sum / (15 * 15); math.Abs(u.TotalVar()-want) > 1e-9*(1+want) {
		t.Errorf("TotalVar %v, want %v", u.TotalVar(), want)
	}
}

func TestObjectiveFacade(t *testing.T) {
	ds := twoBlobs()
	rep, err := ucpc.Cluster(ds, 2, ucpc.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := ucpc.Objective(ds, rep.Partition.Assign, 2)
	if math.Abs(v-rep.Objective) > 1e-6*(1+math.Abs(v)) {
		t.Errorf("Objective %v vs report %v", v, rep.Objective)
	}
}
