module ucpc

go 1.24
