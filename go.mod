module ucpc

go 1.23
